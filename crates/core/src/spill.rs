//! The tiered spill store: where evicted cases go, cheaply.
//!
//! P12 profiled the old spill path — one `create_dir_all` + `fs::write`
//! per eviction, one `read` + `remove_file` per rehydration — at tens of
//! thousands of filesystem round trips per run. This store replaces it
//! with two tiers:
//!
//! 1. **A compressed in-memory tier** (size-capped). Evicted blobs are
//!    parked in a map; rehydrating from here is a pure memory operation
//!    (`tier_hits`). Under churn — the P12 regime, where the same hot
//!    cases thrash in and out — almost every rehydration is served here
//!    and the disk is never touched. Compression is pressure-gated: blobs
//!    park raw while the tier sits below half its budget (the codec costs
//!    nothing in the common regime) and LZ-compress only once the
//!    watermark is crossed, raw residents repacking before any demotion.
//! 2. **A single append-only spill log**. When the memory tier overflows
//!    its byte budget, the least-recently-spilled blobs are demoted into a
//!    pending buffer and flushed to `spill.log` in coalesced batched
//!    appends (one `write` per ~256 KiB, not per case). An in-memory
//!    offset index serves reads; records orphaned by rehydration or
//!    retirement become dead bytes, and when dead outweighs live the log
//!    is compacted (rewrite + rename).
//!
//! The store is format-agnostic: blobs are opaque bytes, so the run-local
//! `PCLE` churn envelope and the durable `PCLC` checkpoints (inserted by
//! monitor restore) coexist; the reader dispatches on magic. The log is
//! strictly run-scoped — created fresh, deleted on drop — and
//! construction sweeps stale `*.pclc` per-case files and leftover logs
//! that a previous run (or crash) left in the directory.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use cows::symbol::Symbol;

/// Coalescing threshold: demoted blobs accumulate in the pending buffer
/// until this many bytes are ready, then hit the log in one append.
const FLUSH_BYTES: usize = 256 * 1024;

/// Compact when the log carries more dead than live payload, but never
/// for a trivially small log.
const COMPACT_MIN_DEAD: u64 = 64 * 1024;

/// Spill-store traffic counters, merged into
/// [`crate::live::LiveStats`] by the monitor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Rehydrations served from the in-memory tier (no disk involved).
    pub tier_hits: u64,
    /// Blobs actually written to the spill log (the real disk evictions).
    pub disk_demotions: u64,
    /// Total bytes appended to the spill log.
    pub log_bytes: u64,
    /// Log compactions (rewrite + rename).
    pub compactions: u64,
}

/// The open spill log plus its in-memory read index.
struct SpillLog {
    path: PathBuf,
    file: fs::File,
    /// `case -> (payload offset, payload length)`.
    index: HashMap<Symbol, (u64, u32)>,
    /// Append position.
    tail: u64,
    /// Payload bytes still reachable through the index.
    live_bytes: u64,
    /// Payload + header bytes orphaned by take/remove/replace.
    dead_bytes: u64,
}

/// Record header in the log: case interner index + payload length.
const REC_HEADER: u64 = 8;

/// A two-tier store of evicted-case blobs, keyed by case symbol.
pub struct SpillStore {
    dir: Option<PathBuf>,
    /// Byte budget of the (compressed) memory tier. Ignored when there is
    /// no directory — with nowhere to demote to, the tier is unbounded,
    /// which is the old `Spilled::Memory` behavior and the right default
    /// for tests and bounded runs.
    mem_cap: usize,
    mem: HashMap<Symbol, (u64, Vec<u8>)>,
    /// Demotion order: `(case, generation)` pairs; stale generations are
    /// skipped, so re-spilled cases are only demoted at their newest slot.
    mem_order: VecDeque<(Symbol, u64)>,
    mem_bytes: usize,
    generation: u64,
    /// Demoted blobs awaiting a coalesced append.
    pending: HashMap<Symbol, Vec<u8>>,
    pending_bytes: usize,
    log: Option<SpillLog>,
    /// Stale files removed from the directory at construction.
    orphans_swept: usize,
    stats: SpillStats,
}

impl SpillStore {
    /// Open a store over `dir` (`None` = memory only). Sweeps orphaned
    /// `*.pclc` per-case spill files and stale `spill.log*` leftovers from
    /// previous runs; the sweep is best-effort — an unreadable directory
    /// just yields a store that will surface the IO error on first demote.
    pub fn new(dir: Option<PathBuf>, mem_cap: usize) -> SpillStore {
        let mut orphans_swept = 0;
        if let Some(d) = &dir {
            if let Ok(listing) = fs::read_dir(d) {
                for entry in listing.flatten() {
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if (name.ends_with(".pclc") || name.starts_with("spill.log"))
                        && fs::remove_file(entry.path()).is_ok()
                    {
                        orphans_swept += 1;
                    }
                }
            }
        }
        SpillStore {
            dir,
            mem_cap,
            mem: HashMap::new(),
            mem_order: VecDeque::new(),
            mem_bytes: 0,
            generation: 0,
            pending: HashMap::new(),
            pending_bytes: 0,
            log: None,
            orphans_swept,
            stats: SpillStats::default(),
        }
    }

    /// Stale spill files removed at construction (restore's orphan sweep).
    pub fn orphans_swept(&self) -> usize {
        self.orphans_swept
    }

    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    pub fn len(&self) -> usize {
        self.mem.len() + self.pending.len() + self.log.as_ref().map_or(0, |l| l.index.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn contains(&self, case: Symbol) -> bool {
        self.mem.contains_key(&case)
            || self.pending.contains_key(&case)
            || self
                .log
                .as_ref()
                .is_some_and(|l| l.index.contains_key(&case))
    }

    /// Every spilled case, unordered.
    pub fn cases(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self.mem.keys().copied().collect();
        v.extend(self.pending.keys().copied());
        if let Some(l) = &self.log {
            v.extend(l.index.keys().copied());
        }
        v
    }

    /// Park a blob. Replaces any previous spill of the same case.
    ///
    /// Compression is pressure-gated: while the tier sits below half its
    /// byte budget, blobs park raw (a tag byte and a memcpy — the common
    /// churn regime, where the resident spill set is far smaller than the
    /// budget, pays no codec at all). Once the tier passes the watermark,
    /// new blobs compress on the way in and raw-parked ones compress on
    /// their way out (see the overflow loop), so the budget is still
    /// honored in actual bytes and the disk still receives compressed
    /// records.
    pub fn insert(&mut self, case: Symbol, payload: &[u8]) -> Result<(), String> {
        self.forget(case);
        let pressured =
            self.dir.is_some() && (self.mem_bytes + payload.len()).saturating_mul(2) > self.mem_cap;
        let blob = if pressured {
            compress(payload)
        } else {
            let mut raw = Vec::with_capacity(payload.len() + 1);
            raw.push(TAG_RAW);
            raw.extend_from_slice(payload);
            raw
        };
        self.mem_bytes += blob.len();
        self.generation += 1;
        self.mem_order.push_back((case, self.generation));
        self.mem.insert(case, (self.generation, blob));
        if self.dir.is_some() {
            while self.mem_bytes > self.mem_cap {
                let Some((victim, generation)) = self.mem_order.pop_front() else {
                    break;
                };
                match self.mem.get(&victim) {
                    Some(&(g, _)) if g == generation => {}
                    _ => continue, // stale order slot: taken, removed or re-spilled
                }
                let (_, blob) = self.mem.remove(&victim).expect("checked above");
                self.mem_bytes -= blob.len();
                // A raw-parked blob compresses on its way out; when the
                // reclaimed bytes alone bring the tier back under budget,
                // it stays resident instead of touching disk. (If the
                // data is incompressible the repack is a no-gain copy and
                // the demotion proceeds — no retry loop.)
                let blob = if blob.first() == Some(&TAG_RAW) {
                    let packed = compress(&blob[1..]);
                    if self.mem_bytes + packed.len() <= self.mem_cap {
                        self.mem_bytes += packed.len();
                        self.generation += 1;
                        self.mem_order.push_back((victim, self.generation));
                        self.mem.insert(victim, (self.generation, packed));
                        continue;
                    }
                    packed
                } else {
                    blob
                };
                self.pending_bytes += blob.len();
                self.pending.insert(victim, blob);
            }
            // A zero-byte memory tier means "nothing buffered": flush on
            // every insert instead of coalescing.
            let threshold = if self.mem_cap == 0 { 0 } else { FLUSH_BYTES };
            if self.pending_bytes >= threshold && !self.pending.is_empty() {
                self.flush_pending()?;
            }
        }
        Ok(())
    }

    /// Take a blob out of the store (the rehydration read).
    pub fn take(&mut self, case: Symbol) -> Result<Option<Vec<u8>>, String> {
        if let Some((_, blob)) = self.mem.remove(&case) {
            self.mem_bytes -= blob.len();
            self.stats.tier_hits += 1;
            return decompress(&blob).map(Some);
        }
        if let Some(blob) = self.pending.remove(&case) {
            self.pending_bytes -= blob.len();
            self.stats.tier_hits += 1; // never reached disk
            return decompress(&blob).map(Some);
        }
        let Some(log) = &mut self.log else {
            return Ok(None);
        };
        let Some((offset, len)) = log.index.remove(&case) else {
            return Ok(None);
        };
        log.live_bytes -= u64::from(len);
        log.dead_bytes += REC_HEADER + u64::from(len);
        let mut blob = vec![0u8; len as usize];
        log.file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| log.file.read_exact(&mut blob))
            .map_err(|e| format!("read spill log {}: {e}", log.path.display()))?;
        self.maybe_compact()?;
        decompress(&blob).map(Some)
    }

    /// Read a blob without removing it or touching the counters (used for
    /// read-only snapshots and whole-monitor checkpoints).
    pub fn peek(&self, case: Symbol) -> Result<Option<Vec<u8>>, String> {
        if let Some((_, blob)) = self.mem.get(&case) {
            return decompress(blob).map(Some);
        }
        if let Some(blob) = self.pending.get(&case) {
            return decompress(blob).map(Some);
        }
        let Some(log) = &self.log else {
            return Ok(None);
        };
        let Some(&(offset, len)) = log.index.get(&case) else {
            return Ok(None);
        };
        // A fresh read handle keeps peeks `&self`; they are rare (operator
        // snapshots, whole-monitor checkpoints), never the churn path.
        let mut file = fs::File::open(&log.path)
            .map_err(|e| format!("open spill log {}: {e}", log.path.display()))?;
        let mut blob = vec![0u8; len as usize];
        file.seek(SeekFrom::Start(offset))
            .and_then(|_| file.read_exact(&mut blob))
            .map_err(|e| format!("read spill log {}: {e}", log.path.display()))?;
        decompress(&blob).map(Some)
    }

    /// Drop a case from every tier (retirement cleanup). Compacts the log
    /// when the removal tips the dead-byte balance.
    pub fn remove(&mut self, case: Symbol) -> Result<(), String> {
        self.forget(case);
        self.maybe_compact()
    }

    /// Untrack `case` everywhere without compaction.
    fn forget(&mut self, case: Symbol) {
        if let Some((_, blob)) = self.mem.remove(&case) {
            self.mem_bytes -= blob.len();
        }
        if let Some(blob) = self.pending.remove(&case) {
            self.pending_bytes -= blob.len();
        }
        if let Some(log) = &mut self.log {
            if let Some((_, len)) = log.index.remove(&case) {
                log.live_bytes -= u64::from(len);
                log.dead_bytes += REC_HEADER + u64::from(len);
            }
        }
    }

    /// One coalesced append of everything pending.
    fn flush_pending(&mut self) -> Result<(), String> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let dir = self
            .dir
            .clone()
            .expect("pending only accumulates with a dir");
        if self.log.is_none() {
            fs::create_dir_all(&dir)
                .map_err(|e| format!("create spill dir {}: {e}", dir.display()))?;
            let path = dir.join("spill.log");
            let file = fs::OpenOptions::new()
                .create(true)
                .truncate(true)
                .read(true)
                .write(true)
                .open(&path)
                .map_err(|e| format!("create spill log {}: {e}", path.display()))?;
            self.log = Some(SpillLog {
                path,
                file,
                index: HashMap::new(),
                tail: 0,
                live_bytes: 0,
                dead_bytes: 0,
            });
        }
        let log = self.log.as_mut().expect("created above");
        let mut batch =
            Vec::with_capacity(self.pending_bytes + REC_HEADER as usize * self.pending.len());
        let mut drained: Vec<(Symbol, Vec<u8>)> = self.pending.drain().collect();
        drained.sort_by_key(|(c, _)| *c);
        for (case, blob) in drained {
            let len = u32::try_from(blob.len()).expect("spill blobs are far below 4 GiB");
            batch.extend_from_slice(&case.index().to_le_bytes());
            batch.extend_from_slice(&len.to_le_bytes());
            let payload_at = log.tail + batch.len() as u64;
            batch.extend_from_slice(&blob);
            if let Some((_, old)) = log.index.insert(case, (payload_at, len)) {
                log.live_bytes -= u64::from(old);
                log.dead_bytes += REC_HEADER + u64::from(old);
            }
            log.live_bytes += u64::from(len);
            self.stats.disk_demotions += 1;
        }
        log.file
            .seek(SeekFrom::Start(log.tail))
            .and_then(|_| log.file.write_all(&batch))
            .map_err(|e| format!("append spill log {}: {e}", log.path.display()))?;
        log.tail += batch.len() as u64;
        self.stats.log_bytes += batch.len() as u64;
        self.pending_bytes = 0;
        Ok(())
    }

    /// Rewrite the log with only live records once dead bytes dominate.
    fn maybe_compact(&mut self) -> Result<(), String> {
        let Some(log) = &self.log else {
            return Ok(());
        };
        if log.dead_bytes < COMPACT_MIN_DEAD || log.dead_bytes <= log.live_bytes {
            return Ok(());
        }
        let log = self.log.as_mut().expect("checked above");
        let mut entries: Vec<(Symbol, u64, u32)> = log
            .index
            .iter()
            .map(|(&c, &(off, len))| (c, off, len))
            .collect();
        entries.sort_by_key(|&(_, off, _)| off);
        let mut rewritten = Vec::new();
        let mut index = HashMap::with_capacity(entries.len());
        let mut live_bytes = 0u64;
        for (case, offset, len) in entries {
            let mut blob = vec![0u8; len as usize];
            log.file
                .seek(SeekFrom::Start(offset))
                .and_then(|_| log.file.read_exact(&mut blob))
                .map_err(|e| format!("compact: read {}: {e}", log.path.display()))?;
            rewritten.extend_from_slice(&case.index().to_le_bytes());
            rewritten.extend_from_slice(&len.to_le_bytes());
            index.insert(case, (rewritten.len() as u64, len));
            rewritten.extend_from_slice(&blob);
            live_bytes += u64::from(len);
        }
        let tmp = log.path.with_extension("log.tmp");
        fs::write(&tmp, &rewritten)
            .map_err(|e| format!("compact: write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &log.path)
            .map_err(|e| format!("compact: rename {}: {e}", log.path.display()))?;
        log.file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&log.path)
            .map_err(|e| format!("compact: reopen {}: {e}", log.path.display()))?;
        log.tail = rewritten.len() as u64;
        log.index = index;
        log.live_bytes = live_bytes;
        log.dead_bytes = 0;
        self.stats.compactions += 1;
        Ok(())
    }
}

impl Drop for SpillStore {
    /// The log is run-scoped scratch, never a durability surface — remove
    /// it so nothing lingers for the next run's orphan sweep.
    fn drop(&mut self) {
        if let Some(log) = &self.log {
            let _ = fs::remove_file(&log.path);
        }
    }
}

// ---------------------------------------------------------------------------
// Compression: a dependency-free LZSS
// ---------------------------------------------------------------------------
//
// Checkpoint blobs are full of repeated structure (shared path prefixes,
// runs of similar entries), so even a minimal LZ pass roughly halves them
// — which doubles the effective capacity of the memory tier, the number
// that decides whether churn ever reaches disk. Greedy matching against a
// single-slot 3-byte-prefix hash table; matches are 2 bytes (12-bit
// backward distance, 4-bit length for 3..=18), literals 1 byte, flags
// packed 8 per control byte. If that fails to win, the blob is stored raw
// behind a 1-byte tag, so compression never costs more than one byte.

const TAG_RAW: u8 = 0;
const TAG_LZ: u8 = 1;
const WINDOW: usize = 1 << 12;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = MIN_MATCH + 15;

#[inline]
fn prefix_hash(bytes: &[u8]) -> usize {
    let p = u32::from(bytes[0]) | u32::from(bytes[1]) << 8 | u32::from(bytes[2]) << 16;
    (p.wrapping_mul(0x9e37_79b1) >> 19) as usize & (WINDOW - 1)
}

/// Compress `input`; the result always round-trips through [`decompress`].
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.push(TAG_LZ);
    out.extend_from_slice(&(u32::try_from(input.len()).expect("blob < 4 GiB")).to_le_bytes());
    let mut table = [usize::MAX; WINDOW];
    let mut i = 0usize;
    let mut flags_at = usize::MAX;
    let mut flag_count = 8u8;
    while i < input.len() {
        if flag_count == 8 {
            flags_at = out.len();
            out.push(0);
            flag_count = 0;
        }
        let mut matched = 0usize;
        let mut distance = 0usize;
        if i + MIN_MATCH <= input.len() {
            let slot = prefix_hash(&input[i..]);
            let candidate = table[slot];
            table[slot] = i;
            if candidate != usize::MAX && i - candidate <= WINDOW && candidate < i {
                let limit = MAX_MATCH.min(input.len() - i);
                let mut l = 0;
                while l < limit && input[candidate + l] == input[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    matched = l;
                    distance = i - candidate;
                }
            }
        }
        if matched >= MIN_MATCH {
            // Flag bit 0 = match; 12-bit distance-1 | 4-bit length-3.
            let token = ((distance - 1) as u16) << 4 | (matched - MIN_MATCH) as u16;
            out.extend_from_slice(&token.to_le_bytes());
            i += matched;
        } else {
            out[flags_at] |= 1 << flag_count;
            out.push(input[i]);
            i += 1;
        }
        flag_count += 1;
    }
    if out.len() > input.len() {
        let mut raw = Vec::with_capacity(input.len() + 1);
        raw.push(TAG_RAW);
        raw.extend_from_slice(input);
        return raw;
    }
    out
}

/// Invert [`compress`].
pub fn decompress(blob: &[u8]) -> Result<Vec<u8>, String> {
    match blob.split_first() {
        Some((&TAG_RAW, rest)) => Ok(rest.to_vec()),
        Some((&TAG_LZ, rest)) => {
            if rest.len() < 4 {
                return Err("compressed blob truncated before length".into());
            }
            let expect = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            let mut out = Vec::with_capacity(expect);
            let mut pos = 4usize;
            let mut flags = 0u8;
            let mut flag_count = 8u8;
            while out.len() < expect {
                if flag_count == 8 {
                    flags = *rest.get(pos).ok_or("compressed blob truncated at flags")?;
                    pos += 1;
                    flag_count = 0;
                }
                if flags >> flag_count & 1 == 1 {
                    out.push(
                        *rest
                            .get(pos)
                            .ok_or("compressed blob truncated at literal")?,
                    );
                    pos += 1;
                } else {
                    let lo = *rest.get(pos).ok_or("compressed blob truncated at match")?;
                    let hi = *rest
                        .get(pos + 1)
                        .ok_or("compressed blob truncated at match")?;
                    pos += 2;
                    let token = u16::from_le_bytes([lo, hi]);
                    let distance = (token >> 4) as usize + 1;
                    let length = (token & 0xf) as usize + MIN_MATCH;
                    if distance > out.len() {
                        return Err("match distance before start of output".into());
                    }
                    let start = out.len() - distance;
                    for k in 0..length {
                        // Overlapping copies are the RLE case; index math
                        // stays valid because out grows as we push.
                        let b = out[start + k];
                        out.push(b);
                    }
                }
                flag_count += 1;
            }
            if out.len() != expect {
                return Err("decompressed length mismatch".into());
            }
            Ok(out)
        }
        _ => Err("empty or untagged compressed blob".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("purposectl-tests")
            .join(format!("spill-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn compression_round_trips() {
        let samples: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"a".to_vec(),
            b"abcabcabcabcabcabc".to_vec(),
            vec![0u8; 10_000],
            (0..=255u8).cycle().take(4096).collect(),
            b"PCLE[Jane]EPR/Clinical[Jane]EPR/Clinical[Jane]EPR/Demographics".to_vec(),
        ];
        for s in samples {
            let c = compress(&s);
            assert_eq!(decompress(&c).unwrap(), s, "sample len {}", s.len());
            assert!(c.len() <= s.len() + 5, "never more than tag+len overhead");
        }
    }

    #[test]
    fn repetitive_blobs_actually_shrink() {
        let blob: Vec<u8> = b"T06 HT-99 201007060900 success "
            .iter()
            .cycle()
            .take(4096)
            .copied()
            .collect();
        let c = compress(&blob);
        assert!(c.len() * 2 < blob.len(), "{} vs {}", c.len(), blob.len());
    }

    #[test]
    fn memory_only_store_round_trips() {
        let mut store = SpillStore::new(None, 0);
        let payload = b"hello spill".to_vec();
        store.insert(sym("S-1"), &payload).unwrap();
        assert!(store.contains(sym("S-1")));
        assert_eq!(store.len(), 1);
        assert_eq!(store.peek(sym("S-1")).unwrap().unwrap(), payload);
        assert_eq!(store.take(sym("S-1")).unwrap().unwrap(), payload);
        assert_eq!(store.stats().tier_hits, 1);
        assert_eq!(store.stats().disk_demotions, 0);
        assert!(store.is_empty());
        assert!(store.take(sym("S-1")).unwrap().is_none());
    }

    #[test]
    fn overflowing_the_memory_tier_demotes_to_the_log() {
        let dir = scratch("demote");
        // A tiny memory tier and an incompressible payload force demotion;
        // FLUSH_BYTES is reached after enough inserts.
        let mut store = SpillStore::new(Some(dir.clone()), 1024);
        let payloads: Vec<(Symbol, Vec<u8>)> = (0..600u32)
            .map(|i| {
                let case = sym(&format!("D-{i}"));
                // Hash-mixed bytes: no short repeats, so LZSS falls back
                // to raw and the pending buffer really reaches FLUSH_BYTES.
                let payload: Vec<u8> = (0..700u64)
                    .map(|j| {
                        let mut h = u64::from(i) * 700 + j;
                        h = (h ^ (h >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                        h = (h ^ (h >> 29)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
                        (h ^ (h >> 32)) as u8
                    })
                    .collect();
                (case, payload)
            })
            .collect();
        for (case, payload) in &payloads {
            store.insert(*case, payload).unwrap();
        }
        assert!(store.stats().disk_demotions > 0, "log must be reached");
        assert!(store.stats().log_bytes > 0);
        assert!(dir.join("spill.log").exists());
        // Every blob still reads back, from whichever tier holds it.
        for (case, payload) in &payloads {
            assert_eq!(store.peek(*case).unwrap().as_ref(), Some(payload));
            assert_eq!(store.take(*case).unwrap().as_ref(), Some(payload));
        }
        assert!(store.is_empty());
        drop(store);
        assert!(!dir.join("spill.log").exists(), "log removed on drop");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compression_is_pressure_gated() {
        let dir = scratch("pressure");
        // Highly compressible payload: LZSS would shrink it ~10x, so the
        // stored size tells us whether the codec ran.
        let payload: Vec<u8> = b"T06 HT-99 201007060900 success "
            .iter()
            .cycle()
            .take(2048)
            .copied()
            .collect();

        // Headroom: a roomy budget parks the blob raw (tag + payload).
        let mut roomy = SpillStore::new(Some(dir.clone()), 1024 * 1024);
        roomy.insert(sym("P-raw"), &payload).unwrap();
        assert_eq!(roomy.mem_bytes, payload.len() + 1, "parked raw");
        assert_eq!(roomy.take(sym("P-raw")).unwrap().unwrap(), payload);
        drop(roomy);

        // Pressure: a budget under 2x the payload compresses on insert,
        // and the compressible blob stays resident — no disk involved.
        let mut tight = SpillStore::new(Some(dir.clone()), 3000);
        tight.insert(sym("P-lz"), &payload).unwrap();
        assert!(
            tight.mem_bytes * 2 < payload.len(),
            "compressed in place ({} B of {} B)",
            tight.mem_bytes,
            payload.len()
        );
        assert_eq!(tight.stats().disk_demotions, 0);
        assert_eq!(tight.take(sym("P-lz")).unwrap().unwrap(), payload);
        drop(tight);

        // Overflow: a raw-parked blob repacks on its way out of a filling
        // tier; when compression alone reclaims the budget it stays
        // resident instead of demoting. P-0 parks raw under the watermark,
        // the Q-i compress past the cap, and the overflow squeezes P-0.
        let mut filling = SpillStore::new(Some(dir.clone()), 6000);
        filling.insert(sym("P-0"), &payload).unwrap();
        assert_eq!(filling.mem_bytes, payload.len() + 1, "parked raw");
        for i in 0..20 {
            filling.insert(sym(&format!("Q-{i}")), &payload).unwrap();
        }
        assert!(filling.mem_bytes <= 6000, "budget honored");
        assert_eq!(filling.stats().disk_demotions, 0, "repack avoided disk");
        assert_eq!(filling.take(sym("P-0")).unwrap().unwrap(), payload);
        for i in 0..20 {
            let got = filling.take(sym(&format!("Q-{i}"))).unwrap().unwrap();
            assert_eq!(got, payload);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn removals_trigger_compaction() {
        let dir = scratch("compact");
        let mut store = SpillStore::new(Some(dir.clone()), 0);
        let payload: Vec<u8> = (0..4000u32)
            .map(|j| j.wrapping_mul(2654435761) as u8)
            .collect();
        for i in 0..200 {
            store.insert(sym(&format!("C-{i}")), &payload).unwrap();
        }
        // Force everything pending onto disk by crossing the flush line.
        assert!(store.stats().disk_demotions > 0);
        for i in 0..190 {
            store.remove(sym(&format!("C-{i}"))).unwrap();
        }
        assert!(
            store.stats().compactions > 0,
            "dead bytes must trigger compaction"
        );
        for i in 190..200 {
            let case = sym(&format!("C-{i}"));
            if store.contains(case) {
                assert_eq!(store.take(case).unwrap().unwrap(), payload);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn construction_sweeps_orphaned_spill_files() {
        let dir = scratch("orphans");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("HT-1-0123456789abcdef.pclc"), b"stale").unwrap();
        fs::write(dir.join("spill.log"), b"stale log").unwrap();
        fs::write(dir.join("keep.txt"), b"unrelated").unwrap();
        let store = SpillStore::new(Some(dir.clone()), 0);
        assert_eq!(store.orphans_swept(), 2);
        assert!(!dir.join("HT-1-0123456789abcdef.pclc").exists());
        assert!(!dir.join("spill.log").exists());
        assert!(dir.join("keep.txt").exists(), "sweep is format-scoped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reinsert_replaces_and_log_reads_survive_replacement() {
        let dir = scratch("replace");
        let mut store = SpillStore::new(Some(dir.clone()), 0);
        let a: Vec<u8> = (0..3000u32).map(|j| (j * 31) as u8).collect();
        let b: Vec<u8> = (0..3000u32).map(|j| (j * 37) as u8).collect();
        for i in 0..120 {
            store.insert(sym(&format!("R-{i}")), &a).unwrap();
        }
        for i in 0..120 {
            store.insert(sym(&format!("R-{i}")), &b).unwrap();
        }
        assert_eq!(store.len(), 120, "replacement must not double-count");
        for i in 0..120 {
            assert_eq!(store.take(sym(&format!("R-{i}"))).unwrap().unwrap(), b);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
