//! Severity metrics for privacy infringements.
//!
//! §7 (future work): "we are complementing the presented mechanism with
//! metrics for measuring the severity of privacy infringements" — to
//! "narrow down the number of situations to be investigated". This module
//! implements that extension: a deterministic score combining
//!
//! * **exposure** — how many entries of the case are unaccounted for from
//!   the deviation point on (more unexplained activity = worse);
//! * **sensitivity** — the most sensitive object touched by unaccounted
//!   entries, under a configurable weighting of object paths (clinical data
//!   outranks demographics, which outranks operational objects);
//! * **breadth** — the number of distinct data subjects touched by
//!   unaccounted entries (a sweep over many patients, as in the paper's
//!   re-purposing scenario, outranks a single-record slip).
//!
//! The score is `sensitivity × (1 + ln(1 + exposure)) × (1 + ln(1 +
//! breadth))`, normalized so a single unaccounted access to a
//! default-weight object scores 1.0.

use crate::replay::Infringement;
use audit::entry::LogEntry;
use cows::symbol::Symbol;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Configurable object-sensitivity weights, matched on the first path
/// segment after the subject (e.g. `EPR`) plus optional deeper segments.
#[derive(Clone, Debug)]
pub struct SensitivityModel {
    /// Weight per path prefix (joined with `/`); the longest matching
    /// prefix wins.
    weights: HashMap<String, f64>,
    /// Weight when nothing matches.
    pub default_weight: f64,
}

impl Default for SensitivityModel {
    /// Healthcare defaults: clinical data is the most sensitive, then
    /// demographics, then everything else.
    fn default() -> Self {
        let mut weights = HashMap::new();
        weights.insert("EPR/Clinical".to_string(), 3.0);
        weights.insert("EPR/Demographics".to_string(), 2.0);
        weights.insert("EPR".to_string(), 2.5);
        SensitivityModel {
            weights,
            default_weight: 1.0,
        }
    }
}

impl SensitivityModel {
    pub fn new(default_weight: f64) -> SensitivityModel {
        SensitivityModel {
            weights: HashMap::new(),
            default_weight,
        }
    }

    pub fn set_weight(&mut self, prefix: &str, weight: f64) {
        self.weights.insert(prefix.to_string(), weight);
    }

    /// Weight of an object: longest matching path prefix.
    pub fn object_weight(&self, entry: &LogEntry) -> f64 {
        let Some(obj) = &entry.object else {
            return self.default_weight;
        };
        let segs: Vec<String> = obj.path.iter().map(|s| s.to_string()).collect();
        for cut in (1..=segs.len()).rev() {
            let prefix = segs[..cut].join("/");
            if let Some(&w) = self.weights.get(&prefix) {
                return w;
            }
        }
        self.default_weight
    }
}

/// The severity assessment of one infringing case.
#[derive(Clone, Debug, PartialEq)]
pub struct SeverityAssessment {
    /// Entries from the deviation point to the end of the case projection.
    pub unaccounted_entries: usize,
    /// Highest sensitivity weight among unaccounted objects.
    pub max_sensitivity: f64,
    /// Distinct data subjects among unaccounted objects.
    pub subjects_touched: usize,
    /// The combined score (≥ 0; 1.0 ≈ one unaccounted default-weight
    /// access).
    pub score: f64,
}

impl SeverityAssessment {
    /// Fold one more unaccounted entry into the assessment. The caller
    /// owns the distinct-subject set (it outlives the per-entry call);
    /// streaming the case tail through here reproduces [`assess`] over
    /// the full projection exactly, which is what lets a live monitor's
    /// alarm-time score converge to the batch auditor's as post-alarm
    /// entries arrive.
    pub fn absorb(
        &mut self,
        entry: &LogEntry,
        subjects: &mut BTreeSet<Symbol>,
        model: &SensitivityModel,
    ) {
        self.unaccounted_entries += 1;
        self.max_sensitivity = self.max_sensitivity.max(model.object_weight(entry));
        if let Some(s) = entry.object.as_ref().and_then(|o| o.subject) {
            subjects.insert(s);
        }
        self.subjects_touched = subjects.len();
        self.score = score(
            self.unaccounted_entries,
            self.max_sensitivity,
            self.subjects_touched,
        );
    }
}

/// The combined score from the three aggregates. Normalized so one
/// unaccounted access to one subject at default weight scores 1.0.
pub fn score(unaccounted_entries: usize, max_sensitivity: f64, subjects_touched: usize) -> f64 {
    let exposure = 1.0 + (unaccounted_entries as f64).ln_1p();
    let breadth = 1.0 + (subjects_touched as f64).ln_1p();
    let norm = (1.0 + 1f64.ln_1p()) * (1.0 + 1f64.ln_1p());
    max_sensitivity * exposure * breadth / norm
}

/// Assess an infringement against the full case projection it was found in.
pub fn assess(
    infringement: &Infringement,
    case_entries: &[&LogEntry],
    model: &SensitivityModel,
) -> SeverityAssessment {
    let unaccounted = &case_entries[infringement.entry_index.min(case_entries.len())..];
    let unaccounted_entries = unaccounted.len();
    let max_sensitivity = unaccounted
        .iter()
        .map(|e| model.object_weight(e))
        .fold(model.default_weight, f64::max);
    let subjects: HashSet<Symbol> = unaccounted
        .iter()
        .filter_map(|e| e.object.as_ref().and_then(|o| o.subject))
        .collect();
    let subjects_touched = subjects.len();
    SeverityAssessment {
        unaccounted_entries,
        max_sensitivity,
        subjects_touched,
        score: score(unaccounted_entries, max_sensitivity, subjects_touched),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit::entry::TaskStatus;
    use audit::time::Timestamp;
    use policy::object::ObjectId;
    use policy::statement::Action;

    fn entry(subject: &str, path: &str) -> LogEntry {
        LogEntry {
            user: cows::sym("u"),
            role: cows::sym("R"),
            action: Action::Read,
            object: Some(ObjectId::of_subject(subject, path)),
            task: cows::sym("T"),
            case: cows::sym("c"),
            time: Timestamp(0),
            status: TaskStatus::Success,
        }
    }

    fn infringement_at(idx: usize, e: &LogEntry) -> Infringement {
        Infringement {
            entry_index: idx,
            entry: e.clone(),
            expected: vec![],
            active: vec![],
            kind: crate::replay::InfringementKind::ProcessDeviation,
        }
    }

    #[test]
    fn single_default_access_scores_one() {
        let mut m = SensitivityModel::new(1.0);
        m.set_weight("X", 1.0);
        let e = entry("Jane", "Other/Thing");
        let refs = [&e];
        let a = assess(&infringement_at(0, &e), &refs, &m);
        assert!((a.score - 1.0).abs() < 1e-9);
        assert_eq!(a.unaccounted_entries, 1);
        assert_eq!(a.subjects_touched, 1);
    }

    #[test]
    fn clinical_data_outranks_demographics() {
        let m = SensitivityModel::default();
        let clin = entry("Jane", "EPR/Clinical");
        let demo = entry("Jane", "EPR/Demographics");
        assert!(m.object_weight(&clin) > m.object_weight(&demo));
        assert!(m.object_weight(&demo) > m.default_weight);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut m = SensitivityModel::new(1.0);
        m.set_weight("EPR", 2.0);
        m.set_weight("EPR/Clinical", 5.0);
        assert_eq!(m.object_weight(&entry("J", "EPR/Clinical/Scan")), 5.0);
        assert_eq!(m.object_weight(&entry("J", "EPR/Demographics")), 2.0);
    }

    #[test]
    fn sweeping_many_patients_scores_higher() {
        let m = SensitivityModel::default();
        let one = [entry("Jane", "EPR/Clinical")];
        let many: Vec<LogEntry> = ["A", "B", "C", "D", "E"]
            .iter()
            .map(|p| entry(p, "EPR/Clinical"))
            .collect();
        let one_refs: Vec<&LogEntry> = one.iter().collect();
        let many_refs: Vec<&LogEntry> = many.iter().collect();
        let s1 = assess(&infringement_at(0, &one[0]), &one_refs, &m);
        let s2 = assess(&infringement_at(0, &many[0]), &many_refs, &m);
        assert!(s2.score > s1.score);
        assert_eq!(s2.subjects_touched, 5);
    }

    #[test]
    fn objectless_entries_use_default_weight() {
        let m = SensitivityModel::default();
        let mut e = entry("Jane", "EPR");
        e.object = None;
        assert_eq!(m.object_weight(&e), m.default_weight);
    }
}
