//! Compliance drift: prescribed process vs. mined behavior.
//!
//! Algorithm 1 answers "is *this case* a valid execution?". Drift analysis
//! answers the organizational question underneath §6's process-mining
//! comparison: "has practice *as a whole* diverged from the prescribed
//! process?" — tasks nobody executes any more, and task-to-task shortcuts
//! that the model does not allow.
//!
//! The observed side comes from the α-relations of the trail's task logs
//! (`petri::discover::LogRelations`); the prescribed side from the BPMN
//! control-flow graph: a direct succession `a > b` is *allowed* when the
//! model has a path from task `a` to task `b` through non-task nodes only
//! (gateways, events, message flows), or when `a ∥ b` is possible (both
//! reachable from a common AND/OR split without passing the other).

use bpmn::model::{NodeId, NodeKind, ProcessModel};
use bpmn::validate::control_edges;
use cows::symbol::Symbol;
use petri::discover::LogRelations;
use std::collections::{BTreeSet, HashMap, HashSet};

/// The drift findings for one purpose.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DriftReport {
    /// Prescribed tasks never observed in any case.
    pub dead_tasks: BTreeSet<Symbol>,
    /// Observed tasks the model does not prescribe at all.
    pub foreign_tasks: BTreeSet<Symbol>,
    /// Observed direct successions `a > b` that the prescribed control
    /// flow cannot produce (shortcuts / reorderings). Pairs over foreign
    /// tasks are excluded — they are already reported above.
    pub illegal_successions: BTreeSet<(Symbol, Symbol)>,
    /// Cases analyzed.
    pub cases: usize,
}

impl DriftReport {
    pub fn is_clean(&self) -> bool {
        self.dead_tasks.is_empty()
            && self.foreign_tasks.is_empty()
            && self.illegal_successions.is_empty()
    }
}

/// Task-to-task "may directly follow" relation of a model: `b` may directly
/// follow `a` if a token can travel from `a`'s output to `b`'s input
/// through non-task nodes, or if `a` and `b` can be concurrently enabled
/// (a parallel/inclusive split reaches both without passing through either).
pub fn allowed_successions(model: &ProcessModel) -> HashSet<(Symbol, Symbol)> {
    let edges = control_edges(model);
    let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for (from, to) in &edges {
        adj.entry(*from).or_default().push(*to);
    }

    // For each task a: BFS from its successors through non-task nodes;
    // every task reached may directly follow a.
    let mut allowed: HashSet<(Symbol, Symbol)> = HashSet::new();
    for a in model.tasks() {
        let mut frontier: Vec<NodeId> = adj.get(&a.id).cloned().unwrap_or_default();
        let mut seen: HashSet<NodeId> = frontier.iter().copied().collect();
        while let Some(n) = frontier.pop() {
            if model.node(n).kind.is_task() {
                allowed.insert((a.name, model.node(n).name));
                continue; // stop at the first task on the path
            }
            for next in adj.get(&n).cloned().unwrap_or_default() {
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
    }

    // Concurrency: from every AND split or OR split, the tasks reachable
    // on *different* branches (up to the next join) may interleave in any
    // order. The branch sweep stops at join nodes — control in-degree > 1
    // — which is where the concurrent window closes (block-structured
    // assumption; the paper's Fig. 1 G3/S4 pair has exactly this shape).
    let mut in_degree: HashMap<NodeId, usize> = HashMap::new();
    for (_, to) in &edges {
        *in_degree.entry(*to).or_default() += 1;
    }
    for n in model.nodes() {
        let concurrent = matches!(n.kind, NodeKind::And | NodeKind::Or { .. })
            && model.successors(n.id).len() > 1;
        if !concurrent {
            continue;
        }
        let mut per_branch: Vec<HashSet<Symbol>> = Vec::new();
        for branch in model.successors(n.id) {
            let mut tasks: HashSet<Symbol> = HashSet::new();
            let mut frontier = vec![branch];
            let mut seen: HashSet<NodeId> = frontier.iter().copied().collect();
            while let Some(x) = frontier.pop() {
                if in_degree.get(&x).copied().unwrap_or(0) > 1 {
                    continue; // the join closes the concurrent window
                }
                if model.node(x).kind.is_task() {
                    tasks.insert(model.node(x).name);
                    // Continue past the task: later tasks on this branch can
                    // also interleave with the other branch.
                }
                for next in adj.get(&x).cloned().unwrap_or_default() {
                    if seen.insert(next) {
                        frontier.push(next);
                    }
                }
            }
            per_branch.push(tasks);
        }
        for (i, left) in per_branch.iter().enumerate() {
            for (j, right) in per_branch.iter().enumerate() {
                if i == j {
                    continue;
                }
                for &a in left {
                    for &b in right {
                        allowed.insert((a, b));
                        allowed.insert((b, a));
                    }
                }
            }
        }
    }
    allowed
}

/// Compare the prescribed `model` with observed per-case task logs.
pub fn drift_report(model: &ProcessModel, task_logs: &[Vec<Symbol>]) -> DriftReport {
    let relations = LogRelations::from_log(task_logs);
    let prescribed: BTreeSet<Symbol> = model.tasks().map(|t| t.name).collect();
    let observed = &relations.tasks;

    let dead_tasks: BTreeSet<Symbol> = prescribed.difference(observed).copied().collect();
    let foreign_tasks: BTreeSet<Symbol> = observed.difference(&prescribed).copied().collect();

    let allowed = allowed_successions(model);
    let mut illegal_successions = BTreeSet::new();
    for &a in observed {
        for &b in observed {
            if relations.directly_follows(a, b)
                && !allowed.contains(&(a, b))
                && prescribed.contains(&a)
                && prescribed.contains(&b)
            {
                illegal_successions.insert((a, b));
            }
        }
    }

    DriftReport {
        dead_tasks,
        foreign_tasks,
        illegal_successions,
        cases: task_logs.len(),
    }
}

/// Collapse a per-case projection into the task log drift analysis expects
/// (consecutive same-task entries merge; failures keep the task name — the
/// drift lens does not distinguish outcomes).
pub fn case_task_log(entries: &[&audit::entry::LogEntry]) -> Vec<Symbol> {
    let mut out: Vec<Symbol> = Vec::new();
    for e in entries {
        if out.last() != Some(&e.task) {
            out.push(e.task);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmn::models::{fig8_exclusive, healthcare_treatment};
    use cows::sym;

    fn logs(runs: &[&[&str]]) -> Vec<Vec<Symbol>> {
        runs.iter()
            .map(|r| r.iter().map(|t| sym(t)).collect())
            .collect()
    }

    #[test]
    fn clean_behavior_reports_nothing() {
        let model = fig8_exclusive();
        let report = drift_report(&model, &logs(&[&["T", "T1"], &["T", "T2"]]));
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn dead_tasks_detected() {
        let model = fig8_exclusive();
        // Nobody ever takes the T2 branch.
        let report = drift_report(&model, &logs(&[&["T", "T1"], &["T", "T1"]]));
        assert_eq!(report.dead_tasks, BTreeSet::from([sym("T2")]));
        assert!(report.foreign_tasks.is_empty());
    }

    #[test]
    fn foreign_tasks_detected() {
        let model = fig8_exclusive();
        let report = drift_report(&model, &logs(&[&["T", "Audit", "T1"]]));
        assert_eq!(report.foreign_tasks, BTreeSet::from([sym("Audit")]));
    }

    #[test]
    fn shortcuts_detected() {
        // T1 directly after T2 is impossible in the exclusive model.
        let model = fig8_exclusive();
        let report = drift_report(&model, &logs(&[&["T", "T2", "T1"]]));
        assert!(report.illegal_successions.contains(&(sym("T2"), sym("T1"))));
    }

    #[test]
    fn healthcare_allowed_successions_cover_fig4() {
        // Every direct succession HT-1 actually produces is allowed.
        let model = healthcare_treatment();
        let allowed = allowed_successions(&model);
        for (a, b) in [
            ("T01", "T02"),
            ("T01", "T05"),
            ("T05", "T06"), // referral message
            ("T06", "T09"),
            ("T09", "T10"), // order → radiology
            ("T12", "T06"), // notification → retrieve results
            ("T07", "T01"), // diagnosis → back to the GP
            ("T02", "T03"),
            ("T03", "T04"),
            ("T02", "T01"), // error boundary retry
        ] {
            assert!(
                allowed.contains(&(sym(a), sym(b))),
                "{a} > {b} should be allowed"
            );
        }
        // And the re-purposing shortcut is not.
        assert!(!allowed.contains(&(sym("T04"), sym("T06"))));
    }

    #[test]
    fn parallel_branches_may_interleave() {
        let mut b = bpmn::ProcessBuilder::new("andp");
        let p = b.pool("P");
        let s = b.start(p, "S");
        let f = b.and(p, "F");
        let a = b.task(p, "A");
        let t = b.task(p, "B");
        let j = b.and(p, "J");
        let e = b.end(p, "E");
        b.flow(s, f);
        b.flow(f, a);
        b.flow(f, t);
        b.flow(a, j);
        b.flow(t, j);
        b.flow(j, e);
        let model = b.build().unwrap();
        let allowed = allowed_successions(&model);
        assert!(allowed.contains(&(sym("A"), sym("B"))));
        assert!(allowed.contains(&(sym("B"), sym("A"))));
        // Both interleavings drift-clean.
        let report = drift_report(&model, &logs(&[&["A", "B"], &["B", "A"]]));
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn case_log_collapses_repeats() {
        use audit::entry::LogEntry;
        use policy::statement::Action;
        let entries: Vec<LogEntry> = [("A", 0u64), ("A", 1), ("B", 2), ("A", 3)]
            .iter()
            .map(|(t, m)| {
                LogEntry::success("u", "R", Action::Read, None, *t, "c", audit::Timestamp(*m))
            })
            .collect();
        let refs: Vec<&LogEntry> = entries.iter().collect();
        let log = case_task_log(&refs);
        assert_eq!(log, vec![sym("A"), sym("B"), sym("A")]);
    }
}
