//! Algorithm 1 — compliance of an audit trail with a purpose specification.
//!
//! The algorithm replays the per-case portion of an audit trail against the
//! COWS encoding of the process implementing the case's purpose. It
//! maintains a set of *configurations* (Def. 6) — `(state, active_tasks,
//! next)` with `next = WeakNext(state)` — and consumes one log entry per
//! iteration:
//!
//! * an entry whose task is active (running) and succeeded is absorbed
//!   without advancing the state (the 1-to-n task↔entry mapping of §3.5);
//! * otherwise the entry must match an observable successor: the task-start
//!   label `r·e.task` (success, with the entry's role specializing the pool
//!   role `r`) or `sys·Err` (failure);
//! * if no configuration accepts the entry, the trail is not a valid
//!   execution of the process — an infringement (Theorem 2 makes this exact
//!   for well-founded processes).

use crate::error::CheckError;
use audit::entry::LogEntry;
use bpmn::encode::Encoded;
use cows::weaknext::{Marked, WeakNextLimits, WeakSuccessor};
use policy::hierarchy::RoleHierarchy;

/// A configuration (Def. 6): the current state with its active tasks, plus
/// the precomputed observable successors.
#[derive(Clone, Debug)]
pub struct Configuration {
    pub state: Marked,
    pub next: Vec<WeakSuccessor>,
}

/// Which replay engine drives the configuration set.
///
/// Both engines implement exactly Algorithm 1 and produce identical
/// verdicts, traces and exploration counts (asserted by the
/// `engine_equivalence` property test). They differ only in how the
/// observable successors are obtained:
///
/// * [`Engine::Direct`] calls [`cows::weaknext::weak_next`] on owned
///   [`Marked`] states every time a configuration is expanded — the
///   paper-faithful baseline, kept for ablation;
/// * [`Engine::Automaton`] walks the process's shared
///   [`cows::automaton::ProcessAutomaton`]: states are interned `u32` ids
///   and each state's successor edges are computed once per process (not
///   once per case), so replaying many cases of the same process is
///   integer-automaton walking;
/// * [`Engine::Trie`] layers the [`crate::trie::ReplayTrie`] over the
///   automaton: whole `configuration-set × observation` steps are
///   memoized on interned frontier rows, so observation prefixes shared
///   *across cases* cost one automaton walk instead of N.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Engine {
    /// Recompute `WeakNext` per configuration (no cross-case sharing).
    Direct,
    /// Walk the lazily compiled, thread-shared observable-step automaton.
    #[default]
    Automaton,
    /// Automaton walking behind a cross-case prefix-sharing transition
    /// cache with dense interned frontiers.
    Trie,
}

/// Deterministic fault-injection hooks for the chaos harness.
///
/// Inert by default (`FailPoints::default()` fires nothing); production
/// paths never set them. Tests and the chaos suite use them to poison one
/// chosen case — deterministically, at any thread count — and assert that
/// the blast radius stays confined to that case
/// ([`crate::auditor::CaseOutcome::Inconclusive`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailPoints {
    /// Panic while consuming any entry of this case.
    pub panic_case: Option<cows::Symbol>,
    /// Sleep this many milliseconds before consuming each entry of this
    /// case (drives the deadline path without a genuinely slow process).
    pub stall_case: Option<(cows::Symbol, u64)>,
}

impl FailPoints {
    pub fn is_inert(&self) -> bool {
        self.panic_case.is_none() && self.stall_case.is_none()
    }
}

/// Options for [`check_case`].
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// τ-budget per `WeakNext` call.
    pub weaknext: WeakNextLimits,
    /// Which replay engine to use (see [`Engine`]).
    pub engine: Engine,
    /// Upper bound on simultaneously-tracked configurations.
    pub max_configurations: usize,
    /// Record per-entry step details (needed to reproduce Fig. 6; costs
    /// memory on long trails).
    pub record_trace: bool,
    /// §4's optional temporal constraint: "if a maximum duration for the
    /// process is defined, an infringement can be raised in the case where
    /// this temporal constraint is violated." Minutes from the case's
    /// first entry.
    pub max_case_minutes: Option<u64>,
    /// Wall-clock budget for one case's replay, measured from session open.
    /// Exceeding it aborts the case with
    /// [`CheckError::DeadlineExceeded`](crate::error::CheckError) — an
    /// *inconclusive* result, never a verdict — so one pathological case
    /// cannot stall a whole audit run.
    pub case_deadline_ms: Option<u64>,
    /// Budget on total `WeakNext` successors explored for one case.
    /// Exceeding it aborts the case with
    /// [`CheckError::StepBudgetExhausted`](crate::error::CheckError).
    pub max_explored: Option<usize>,
    /// Chaos-testing fault injection (inert by default).
    pub failpoints: FailPoints,
    /// Record the per-case evidence trace ([`obs::CaseEvidence`]): one step
    /// per consumed entry plus the violating entry, serializable as
    /// deterministic JSONL and rendered by `purposectl audit --explain`.
    pub record_evidence: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            weaknext: WeakNextLimits::default(),
            engine: Engine::default(),
            max_configurations: 4_096,
            record_trace: false,
            max_case_minutes: None,
            case_deadline_ms: None,
            max_explored: None,
            failpoints: FailPoints::default(),
            record_evidence: false,
        }
    }
}

/// How an entry was accepted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchKind {
    /// The entry's task was already running — no state change (line 16).
    Absorbed,
    /// The entry fired an observable task-start transition (line 12).
    Started,
    /// The entry was a failure matching `sys·Err` (line 12).
    Failed,
}

/// Per-entry record of the replay (the data behind Fig. 6).
#[derive(Clone, Debug)]
pub struct StepRecord {
    pub entry_index: usize,
    /// How at least one configuration accepted the entry.
    pub matches: Vec<MatchKind>,
    /// Number of configurations tracked after the entry.
    pub configurations: usize,
    /// The token-holding tasks per configuration (the paper's Fig. 6 state
    /// annotations), rendered `role.task`.
    pub token_tasks: Vec<Vec<String>>,
}

/// The verdict of Algorithm 1 on one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The trail is a valid (partial) execution of the process.
    Compliant {
        /// Whether some surviving configuration can reach process
        /// completion without further observable activity. If `false`, the
        /// process is mid-flight and "the analysis should be resumed when
        /// new actions within the process instance are recorded" (§4).
        can_complete: bool,
    },
    /// The trail deviates from every execution of the process.
    Infringement(Infringement),
}

impl Verdict {
    pub fn is_compliant(&self) -> bool {
        matches!(self, Verdict::Compliant { .. })
    }
}

/// How the trail deviated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InfringementKind {
    /// The entry cannot be simulated by any execution of the process
    /// (line 21 of Algorithm 1).
    ProcessDeviation,
    /// The case exceeded the configured maximum duration (§4's temporal
    /// constraint).
    TemporalViolation {
        elapsed_minutes: u64,
        limit_minutes: u64,
    },
}

/// A detected deviation, with diagnostics for the privacy officer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Infringement {
    /// Index (within the case projection) of the offending entry.
    pub entry_index: usize,
    /// The offending entry.
    pub entry: LogEntry,
    /// The observations the process would have accepted instead, rendered
    /// `role.task` / `sys.Err`, deduplicated and sorted.
    pub expected: Vec<String>,
    /// Tasks that were running when the entry arrived.
    pub active: Vec<String>,
    /// What kind of deviation this is.
    pub kind: InfringementKind,
}

/// Outcome of [`check_case`].
#[derive(Clone, Debug)]
pub struct CaseCheck {
    pub verdict: Verdict,
    /// Per-entry trace (empty unless [`CheckOptions::record_trace`]).
    pub steps: Vec<StepRecord>,
    /// Largest configuration set tracked at any point.
    pub peak_configurations: usize,
    /// Total `WeakNext` successor states computed.
    pub explored_successors: usize,
    /// The evidence trace in capture form (present iff
    /// [`CheckOptions::record_evidence`]); render it with
    /// [`CaseCheck::evidence_trace`]. The `purpose` field is empty at this
    /// layer — the auditor fills it in after purpose resolution.
    pub evidence: Option<crate::session::RawEvidence>,
}

impl CaseCheck {
    /// Render the recorded evidence as a serializable [`obs::CaseEvidence`].
    ///
    /// Capture during replay stores interned state ids, not strings — the
    /// hot loop must stay near-free — so rendering needs the process and
    /// the same `entries` projection that was replayed. `None` unless
    /// [`CheckOptions::record_evidence`] was set.
    pub fn evidence_trace(
        &self,
        encoded: &Encoded,
        entries: &[&LogEntry],
    ) -> Option<obs::CaseEvidence> {
        self.evidence
            .as_ref()
            .map(|raw| raw.materialize(encoded, entries))
    }
}

/// Run Algorithm 1 on the projection of an audit trail onto one case.
///
/// `entries` must be the chronological per-case projection (see
/// [`audit::trail::AuditTrail::project_case`]). Internally this drives a
/// [`crate::session::ReplaySession`]; use the session directly for
/// incremental (resumable) analysis.
pub fn check_case(
    encoded: &Encoded,
    hierarchy: &RoleHierarchy,
    entries: &[&LogEntry],
    opts: &CheckOptions,
) -> Result<CaseCheck, CheckError> {
    check_case_traced(encoded, hierarchy, entries, opts, &obs::Recorder::noop())
}

/// [`check_case`] with an event recorder: the session emits replay
/// telemetry (entry steps, automaton expansions, `WeakNext` computations)
/// on it. With a noop recorder this is exactly `check_case`.
pub fn check_case_traced(
    encoded: &Encoded,
    hierarchy: &RoleHierarchy,
    entries: &[&LogEntry],
    opts: &CheckOptions,
    recorder: &obs::Recorder,
) -> Result<CaseCheck, CheckError> {
    check_case_with(encoded, hierarchy, entries, opts, recorder, None)
}

/// [`check_case_traced`] with an optional shared [`ReplayTrie`]. Under
/// [`Engine::Trie`] the session memoizes into (and is served from) that
/// trie, sharing transitions with every other case of the process; without
/// one, a session-local trie is built — correct but unshared. Other
/// engines ignore the handle.
pub fn check_case_with(
    encoded: &Encoded,
    hierarchy: &RoleHierarchy,
    entries: &[&LogEntry],
    opts: &CheckOptions,
    recorder: &obs::Recorder,
    trie: Option<&std::sync::Arc<crate::trie::ReplayTrie>>,
) -> Result<CaseCheck, CheckError> {
    let mut core = match (opts.engine, trie) {
        (Engine::Trie, Some(t)) => {
            // Whole-case fast path: when the outcome is a pure function of
            // the replay-relevant projection, duplicate cases skip the
            // per-entry session walk entirely.
            if crate::trie::case_memo_eligible(opts) {
                return crate::trie::replay_case_memoized(
                    encoded, hierarchy, entries, opts, recorder, t,
                );
            }
            crate::session::SessionCore::with_trie(
                encoded,
                *opts,
                t.clone(),
                hierarchy,
                recorder.clone(),
            )?
        }
        _ => crate::session::SessionCore::with_recorder(encoded, *opts, recorder.clone())?,
    };
    for e in entries {
        if let crate::session::FeedOutcome::Rejected(_) = core.feed(encoded, hierarchy, e)? {
            break;
        }
    }
    core.finish(encoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use audit::entry::TaskStatus;
    use audit::time::Timestamp;
    use bpmn::encode::encode;
    use bpmn::models::{fig8_exclusive, fig9_error};
    use policy::statement::Action;

    fn entry(role: &str, task: &str, minute: u64, status: TaskStatus) -> LogEntry {
        LogEntry {
            user: cows::sym("u"),
            role: cows::sym(role),
            action: Action::Read,
            object: None,
            task: cows::sym(task),
            case: cows::sym("c"),
            time: Timestamp(minute),
            status,
        }
    }

    fn ok(role: &str, task: &str, minute: u64) -> LogEntry {
        entry(role, task, minute, TaskStatus::Success)
    }

    fn check(model: bpmn::ProcessModel, entries: &[LogEntry]) -> CaseCheck {
        let encoded = encode(&model);
        let h = RoleHierarchy::new();
        let refs: Vec<&LogEntry> = entries.iter().collect();
        check_case(&encoded, &h, &refs, &CheckOptions::default()).unwrap()
    }

    #[test]
    fn valid_branch_is_compliant() {
        let trail = [ok("P", "T", 1), ok("P", "T1", 2)];
        let out = check(fig8_exclusive(), &trail);
        assert_eq!(out.verdict, Verdict::Compliant { can_complete: true });
    }

    #[test]
    fn both_exclusive_branches_is_infringement() {
        let trail = [ok("P", "T", 1), ok("P", "T1", 2), ok("P", "T2", 3)];
        let out = check(fig8_exclusive(), &trail);
        match out.verdict {
            Verdict::Infringement(inf) => {
                assert_eq!(inf.entry_index, 2);
                assert!(inf.active.contains(&"P.T1".to_string()));
            }
            v => panic!("expected infringement, got {v:?}"),
        }
    }

    #[test]
    fn repeated_entries_absorbed_by_running_task() {
        // Several actions within one task: a single T entry sequence.
        let trail = [
            ok("P", "T", 1),
            ok("P", "T", 2),
            ok("P", "T", 3),
            ok("P", "T1", 4),
        ];
        let out = check(fig8_exclusive(), &trail);
        assert!(out.verdict.is_compliant());
    }

    #[test]
    fn skipping_a_task_is_infringement() {
        // T1/T2 without having run T first.
        let trail = [ok("P", "T1", 1)];
        let out = check(fig8_exclusive(), &trail);
        match out.verdict {
            Verdict::Infringement(inf) => {
                assert_eq!(inf.entry_index, 0);
                assert_eq!(inf.expected, vec!["P.T".to_string()]);
            }
            v => panic!("expected infringement, got {v:?}"),
        }
    }

    #[test]
    fn failure_matches_error_boundary() {
        let trail = [
            ok("P", "T", 1),
            entry("P", "T", 2, TaskStatus::Failure),
            ok("P", "T1", 3), // the error handler
        ];
        let out = check(fig9_error(), &trail);
        assert_eq!(out.verdict, Verdict::Compliant { can_complete: true });
    }

    #[test]
    fn failure_without_error_boundary_is_infringement() {
        let trail = [ok("P", "T", 1), entry("P", "T", 2, TaskStatus::Failure)];
        let out = check(fig8_exclusive(), &trail);
        assert!(!out.verdict.is_compliant());
    }

    #[test]
    fn mid_process_trail_is_compliant_but_incomplete() {
        let trail = [ok("P", "T", 1)];
        let out = check(fig8_exclusive(), &trail);
        assert_eq!(
            out.verdict,
            Verdict::Compliant {
                can_complete: false
            }
        );
    }

    #[test]
    fn empty_projection_is_trivially_compliant() {
        let out = check(fig8_exclusive(), &[]);
        assert!(out.verdict.is_compliant());
    }

    #[test]
    fn wrong_role_is_infringement() {
        let trail = [ok("Q", "T", 1)];
        let out = check(fig8_exclusive(), &trail);
        assert!(!out.verdict.is_compliant());
    }

    #[test]
    fn role_hierarchy_generalizes_pool_role() {
        // Pool role is P; the entry role PP specializes P.
        let encoded = encode(&fig8_exclusive());
        let mut h = RoleHierarchy::new();
        h.specializes("PP", "P").unwrap();
        let trail = [ok("PP", "T", 1)];
        let refs: Vec<&LogEntry> = trail.iter().collect();
        let out = check_case(&encoded, &h, &refs, &CheckOptions::default()).unwrap();
        assert!(out.verdict.is_compliant());
    }

    #[test]
    fn engines_agree_on_verdict_trace_and_counters() {
        let trails: Vec<Vec<LogEntry>> = vec![
            vec![ok("P", "T", 1), ok("P", "T1", 2)],
            vec![ok("P", "T", 1), ok("P", "T1", 2), ok("P", "T2", 3)],
            vec![ok("P", "T1", 1)],
            vec![
                ok("P", "T", 1),
                ok("P", "T", 2),
                ok("P", "T", 3),
                ok("P", "T1", 4),
            ],
            vec![ok("Q", "T", 1)],
            vec![],
        ];
        for model in [fig8_exclusive, fig9_error] {
            for trail in &trails {
                // Fresh encodings per run so a warmed automaton cannot mask
                // a divergence in exploration counts.
                let h = RoleHierarchy::new();
                let refs: Vec<&LogEntry> = trail.iter().collect();
                let direct = check_case(
                    &encode(&model()),
                    &h,
                    &refs,
                    &CheckOptions {
                        engine: Engine::Direct,
                        record_trace: true,
                        ..CheckOptions::default()
                    },
                )
                .unwrap();
                let automaton = check_case(
                    &encode(&model()),
                    &h,
                    &refs,
                    &CheckOptions {
                        engine: Engine::Automaton,
                        record_trace: true,
                        ..CheckOptions::default()
                    },
                )
                .unwrap();
                let trie = check_case(
                    &encode(&model()),
                    &h,
                    &refs,
                    &CheckOptions {
                        engine: Engine::Trie,
                        record_trace: true,
                        ..CheckOptions::default()
                    },
                )
                .unwrap();
                for other in [&automaton, &trie] {
                    assert_eq!(direct.verdict, other.verdict);
                    assert_eq!(direct.peak_configurations, other.peak_configurations);
                    assert_eq!(direct.explored_successors, other.explored_successors);
                    assert_eq!(direct.steps.len(), other.steps.len());
                    for (d, a) in direct.steps.iter().zip(&other.steps) {
                        assert_eq!(d.entry_index, a.entry_index);
                        assert_eq!(d.matches, a.matches);
                        assert_eq!(d.configurations, a.configurations);
                        assert_eq!(d.token_tasks, a.token_tasks);
                    }
                }
            }
        }
    }

    #[test]
    fn trace_recording_captures_steps() {
        let encoded = encode(&fig8_exclusive());
        let h = RoleHierarchy::new();
        let trail = [ok("P", "T", 1), ok("P", "T", 2), ok("P", "T2", 3)];
        let refs: Vec<&LogEntry> = trail.iter().collect();
        let opts = CheckOptions {
            record_trace: true,
            ..CheckOptions::default()
        };
        let out = check_case(&encoded, &h, &refs, &opts).unwrap();
        assert_eq!(out.steps.len(), 3);
        assert_eq!(out.steps[0].matches, vec![MatchKind::Started]);
        assert_eq!(out.steps[1].matches, vec![MatchKind::Absorbed]);
        assert_eq!(out.steps[0].token_tasks[0], vec!["P.T".to_string()]);
    }
}
