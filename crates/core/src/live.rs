//! Online purpose control.
//!
//! The paper's mechanism is a-posteriori, but nothing in Algorithm 1
//! requires the trail to be complete before checking starts — the
//! configuration set advances one entry at a time. [`LiveAuditor`] exploits
//! that: it keeps one [`crate::session::SessionCore`] per open case and
//! raises an alarm the *moment* an entry deviates, turning the paper's
//! detective control into a near-real-time one (a tighter variant of the
//! §4 observation that mimicry only works in narrow windows — windows this
//! monitor shrinks to a single log entry).

use crate::auditor::{Auditor, RegisteredProcess};
use crate::error::CheckError;
use crate::replay::{CaseCheck, Infringement};
use crate::session::{FeedOutcome, SessionCore};
use crate::severity::{assess, SeverityAssessment};
use audit::entry::LogEntry;
use cows::symbol::Symbol;
use std::collections::HashMap;
use std::sync::Arc;

/// What happened when an entry was observed.
#[derive(Clone, Debug)]
pub enum LiveEvent {
    /// The entry fits its case's process so far.
    Accepted { case: Symbol },
    /// The entry deviates — raise the alarm now.
    Alarm {
        case: Symbol,
        infringement: Infringement,
        severity: SeverityAssessment,
    },
    /// The case was already closed by a previous alarm; the entry is
    /// recorded as additional unaccounted activity.
    AfterAlarm { case: Symbol },
    /// No purpose/process could be resolved for the case.
    Unresolved { case: Symbol },
}

impl LiveEvent {
    pub fn is_alarm(&self) -> bool {
        matches!(self, LiveEvent::Alarm { .. })
    }
}

struct LiveCase {
    process: Arc<RegisteredProcess>,
    core: SessionCore,
    entries: Vec<LogEntry>,
}

/// A streaming auditor: feed it log entries as the systems emit them.
pub struct LiveAuditor {
    auditor: Auditor,
    cases: HashMap<Symbol, LiveCase>,
    alarms: Vec<(Symbol, Infringement)>,
}

impl LiveAuditor {
    pub fn new(auditor: Auditor) -> LiveAuditor {
        LiveAuditor {
            auditor,
            cases: HashMap::new(),
            alarms: Vec::new(),
        }
    }

    pub fn auditor(&self) -> &Auditor {
        &self.auditor
    }

    /// Number of cases currently tracked.
    pub fn open_cases(&self) -> usize {
        self.cases.len()
    }

    /// Alarms raised so far, in order.
    pub fn alarms(&self) -> &[(Symbol, Infringement)] {
        &self.alarms
    }

    /// Observe one log entry (entries must arrive per-case in
    /// chronological order, as a log shipper would deliver them).
    pub fn observe(&mut self, entry: &LogEntry) -> Result<LiveEvent, CheckError> {
        let case = entry.case;
        if !self.cases.contains_key(&case) {
            let Some(purpose) = self.auditor.resolve_case(case) else {
                return Ok(LiveEvent::Unresolved { case });
            };
            let Some(process) = self.auditor.registry.process_for(purpose) else {
                return Ok(LiveEvent::Unresolved { case });
            };
            let core = SessionCore::new(&process.encoded, self.auditor.options)?;
            self.cases.insert(
                case,
                LiveCase {
                    process: process.clone(),
                    core,
                    entries: Vec::new(),
                },
            );
        }
        let live = self.cases.get_mut(&case).expect("inserted above");
        live.entries.push(entry.clone());
        if live.core.is_closed() {
            return Ok(LiveEvent::AfterAlarm { case });
        }
        let hierarchy = self.auditor.context.roles();
        match live.core.feed(&live.process.encoded, hierarchy, entry)? {
            FeedOutcome::Accepted { .. } => Ok(LiveEvent::Accepted { case }),
            FeedOutcome::Rejected(infringement) => {
                let refs: Vec<&LogEntry> = live.entries.iter().collect();
                let severity = assess(&infringement, &refs, &self.auditor.sensitivity);
                self.alarms.push((case, infringement.clone()));
                Ok(LiveEvent::Alarm {
                    case,
                    infringement,
                    severity,
                })
            }
        }
    }

    /// Snapshot the Algorithm-1 result for one tracked case.
    pub fn snapshot(&self, case: Symbol) -> Option<Result<CaseCheck, CheckError>> {
        self.cases
            .get(&case)
            .map(|live| live.core.finish(&live.process.encoded))
    }

    /// Drop cases whose process has completed (every configuration can
    /// silently terminate) — the live monitor's garbage collection.
    /// Returns the retired case names.
    pub fn retire_completed(&mut self) -> Result<Vec<Symbol>, CheckError> {
        let mut retired = Vec::new();
        let mut keep: HashMap<Symbol, LiveCase> = HashMap::new();
        for (case, live) in self.cases.drain() {
            let done = !live.core.is_closed()
                && live.core.finish(&live.process.encoded)?.verdict
                    == crate::replay::Verdict::Compliant { can_complete: true };
            if done {
                retired.push(case);
            } else {
                keep.insert(case, live);
            }
        }
        self.cases = keep;
        retired.sort();
        Ok(retired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::ProcessRegistry;
    use audit::samples::figure4_trail;
    use bpmn::models::{clinical_trial, healthcare_treatment};
    use cows::sym;
    use policy::samples::{
        clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
    };

    fn live() -> LiveAuditor {
        let mut registry = ProcessRegistry::new();
        registry.register(treatment(), healthcare_treatment());
        registry.register(clinical_trial_purpose(), clinical_trial());
        registry.add_case_prefix("HT-", treatment());
        registry.add_case_prefix("CT-", clinical_trial_purpose());
        LiveAuditor::new(Auditor::new(
            registry,
            extended_hospital_policy(),
            hospital_context(),
        ))
    }

    #[test]
    fn streams_the_fig4_trail_and_alarms_on_the_sweep() {
        let mut monitor = live();
        let trail = figure4_trail();
        let mut alarm_cases = Vec::new();
        for e in &trail {
            if let LiveEvent::Alarm { case, .. } = monitor.observe(e).unwrap() {
                alarm_cases.push(case.to_string());
            }
        }
        // The five printed sweep cases each alarm on their very first
        // (and only) entry — detection latency of one log entry.
        assert_eq!(
            alarm_cases,
            vec!["HT-10", "HT-11", "HT-20", "HT-21", "HT-30"]
        );
        // The legitimate cases never alarmed.
        assert!(monitor
            .snapshot(sym("HT-1"))
            .unwrap()
            .unwrap()
            .verdict
            .is_compliant());
        assert!(monitor
            .snapshot(sym("CT-1"))
            .unwrap()
            .unwrap()
            .verdict
            .is_compliant());
    }

    #[test]
    fn entries_after_an_alarm_are_tracked_not_replayed() {
        let mut monitor = live();
        let bad = audit::codec::parse_trail(
            "Bob Cardiologist read [Jane]EPR/Clinical T06 HT-99 201007060900 success\n\
             Bob Cardiologist read [Jane]EPR/Clinical T06 HT-99 201007060905 success\n",
        )
        .unwrap();
        let mut events = Vec::new();
        for e in &bad {
            events.push(monitor.observe(e).unwrap());
        }
        assert!(events[0].is_alarm());
        assert!(matches!(events[1], LiveEvent::AfterAlarm { .. }));
        assert_eq!(monitor.alarms().len(), 1);
    }

    #[test]
    fn unresolved_cases_are_reported() {
        let mut monitor = live();
        let e = audit::codec::parse_trail(
            "Bob Cardiologist read [Jane]EPR/Clinical T06 XX-1 201007060900 success\n",
        )
        .unwrap();
        let ev = monitor.observe(&e.entries()[0]).unwrap();
        assert!(matches!(ev, LiveEvent::Unresolved { .. }));
        assert_eq!(monitor.open_cases(), 0);
    }

    #[test]
    fn completed_cases_retire() {
        let mut monitor = live();
        let trail = figure4_trail();
        for e in trail.project_case(sym("HT-1")) {
            monitor.observe(e).unwrap();
        }
        assert_eq!(monitor.open_cases(), 1);
        let retired = monitor.retire_completed().unwrap();
        assert_eq!(retired, vec![sym("HT-1")]);
        assert_eq!(monitor.open_cases(), 0);
    }

    #[test]
    fn live_verdicts_match_batch_audit() {
        let mut monitor = live();
        let trail = figure4_trail();
        for e in &trail {
            monitor.observe(e).unwrap();
        }
        let batch = monitor.auditor().audit(&trail);
        for case in &batch.cases {
            let live_verdict = monitor
                .snapshot(case.case)
                .expect("case tracked")
                .expect("no machinery error");
            assert_eq!(
                live_verdict.verdict.is_compliant(),
                case.outcome.is_compliant(),
                "case {} disagrees between live and batch",
                case.case
            );
        }
    }
}
