//! Online purpose control — the streaming audit service.
//!
//! The paper's mechanism is a-posteriori, but nothing in Algorithm 1
//! requires the trail to be complete before checking starts — the
//! configuration set advances one entry at a time. [`LiveAuditor`] exploits
//! that: it keeps one [`crate::session::SessionCore`] per open case and
//! raises an alarm the *moment* an entry deviates, turning the paper's
//! detective control into a near-real-time one (a tighter variant of the
//! §4 observation that mimicry only works in narrow windows — windows this
//! monitor shrinks to a single log entry).
//!
//! Unlike a batch replay, a monitor runs forever, so its memory must not
//! grow with history. Three mechanisms bound it ([`LiveConfig`]):
//!
//! * **Retirement** — an alarmed case collapses into a compact
//!   [`ClosedCase`] (infringement + severity + a counter of post-alarm
//!   entries), never a growing entry vector.
//! * **Windowed context** — per open case only the last
//!   `max_entries_per_case` entries are retained (the severity context);
//!   older ones are counted, not stored.
//! * **Eviction** — when more than `max_open_cases` cases are open, or a
//!   case has been idle longer than `idle_eviction` trail-minutes, a
//!   victim session is serialized to the spill store and dropped from
//!   memory. Its next entry rehydrates it byte-identically and the replay
//!   continues as if it had never left.
//!
//! Eviction is engineered for *churn*, not durability (P12 measured the
//! old durable path at 8× batch time under an undersized cap):
//!
//! * **Hysteresis** — the resident set is segmented: cases enter on
//!   *probation* and are *protected* once re-touched; victims are drawn
//!   probation-first, and a freshly rehydrated case is shielded for
//!   [`LiveConfig::eviction_debounce`] LRU ticks so hot cases stop
//!   thrashing through the spill store ([`LiveStats::evictions_avoided`]
//!   counts every time the shield overrode plain LRU).
//! * **The churn envelope** — within a run, evicted sessions travel as
//!   compact [`crate::churn`] `PCLE` records (raw automaton ids + interner
//!   indices, varint-packed) instead of the durable `PCLC` checkpoint;
//!   whole-monitor [`LiveAuditor::checkpoint`]/[`LiveAuditor::restore`]
//!   still speak `PCLC`/`PCLM` only.
//! * **Tiered spilling** — blobs land in a size-capped compressed
//!   in-memory tier ([`crate::spill::SpillStore`]) and reach disk only by
//!   coalesced batched appends to a single run-scoped spill log, not one
//!   file per case per eviction.

use crate::auditor::{Auditor, RegisteredProcess};
use crate::checkpoint::{
    decode_case, encode_case, CaseCheckpoint, MonitorCheckpoint, RestoreError,
};
use crate::churn::{decode_churn, encode_churn, ChurnCheckpoint, EntryBlock, CHURN_MAGIC};
use crate::durable::SyncPolicy;
use crate::error::CheckError;
use crate::replay::{CaseCheck, Engine, Infringement, Verdict};
use crate::session::{FeedOutcome, SessionCore, SessionMeta, SessionState};
use crate::severity::{assess, SeverityAssessment};
use crate::spill::SpillStore;
use audit::entry::LogEntry;
use audit::time::Timestamp;
use cows::symbol::Symbol;
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

/// What happened when an entry was observed.
#[derive(Clone, Debug)]
pub enum LiveEvent {
    /// The entry fits its case's process so far.
    Accepted { case: Symbol },
    /// The entry deviates — raise the alarm now.
    Alarm {
        case: Symbol,
        infringement: Infringement,
        severity: SeverityAssessment,
    },
    /// The case was already closed by a previous alarm; the entry is
    /// counted as additional unaccounted activity.
    AfterAlarm { case: Symbol },
    /// No purpose/process could be resolved for the case.
    Unresolved { case: Symbol },
}

impl LiveEvent {
    pub fn is_alarm(&self) -> bool {
        matches!(self, LiveEvent::Alarm { .. })
    }
}

/// Memory policy of the streaming monitor.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Most sessions kept resident; beyond this the least-recently-active
    /// case is evicted to the spill store.
    pub max_open_cases: usize,
    /// Severity-context window per open case; older entries are counted
    /// (`entries_dropped`), not stored.
    pub max_entries_per_case: usize,
    /// Evict cases idle for more than this many trail-time minutes
    /// (checked by [`LiveAuditor::maintain`]). `None` disables the idle
    /// sweep; capacity eviction still applies.
    pub idle_eviction: Option<u64>,
    /// Directory for the spill store's append-only log. `None` keeps
    /// spilled blobs in memory — still far smaller than live sessions, and
    /// the right default for tests and bounded runs. Each monitor needs
    /// its own directory ([`crate::sharded::ShardedMonitor`] adds a
    /// `shard-{i}` suffix per shard).
    pub spill_dir: Option<PathBuf>,
    /// Byte budget of the compressed in-memory spill tier. Only meaningful
    /// with a `spill_dir` — without one there is nowhere to demote to and
    /// the tier is unbounded.
    pub mem_spill_bytes: usize,
    /// How many LRU ticks a freshly rehydrated case is shielded from
    /// eviction (the churn debounce). `None` disables the shield.
    pub eviction_debounce: Option<u64>,
    /// Fsync cadence for the spill log and checkpoint writes (the
    /// `--durability` knob; see [`crate::durable::SyncPolicy`]).
    pub durability: SyncPolicy,
}

impl Default for LiveConfig {
    fn default() -> LiveConfig {
        LiveConfig {
            max_open_cases: 1024,
            max_entries_per_case: 256,
            idle_eviction: None,
            spill_dir: None,
            mem_spill_bytes: 8 * 1024 * 1024,
            eviction_debounce: Some(32),
            durability: SyncPolicy::default(),
        }
    }
}

/// Monitor throughput/occupancy counters, exported into the closed metric
/// vocabulary by [`crate::metrics::record_live_metrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Entries observed (all events).
    pub entries: u64,
    /// Alarms raised.
    pub alarms: u64,
    /// Entries observed on already-closed cases.
    pub after_alarm: u64,
    /// Entries whose case resolved to no purpose/process.
    pub unresolved: u64,
    /// Sessions checkpointed out of memory.
    pub evictions: u64,
    /// Sessions rebuilt from the spill store.
    pub rehydrations: u64,
    /// Cases that stopped being tracked as sessions: completed cases
    /// garbage-collected by [`LiveAuditor::retire_completed`] plus alarmed
    /// cases collapsed into [`ClosedCase`] records.
    pub retired: u64,
    /// Total bytes handed to the spill store (pre-compression).
    pub spilled_bytes: u64,
    /// Times the hysteresis policy (probation/protected segments + the
    /// rehydration shield) overrode the plain-LRU victim.
    pub evictions_avoided: u64,
    /// Rehydrations served from the in-memory spill tier (no disk).
    pub spill_tier_hits: u64,
    /// Blobs demoted from the memory tier onto the spill log — the real
    /// disk evictions.
    pub spill_disk_demotions: u64,
    /// Total bytes appended to the spill log.
    pub spill_log_bytes: u64,
    /// Spill-log compactions.
    pub spill_compactions: u64,
    /// Resident-budget rebalances (always 0 at shard level; set by
    /// [`crate::sharded::ShardedMonitor`]).
    pub cap_rebalances: u64,
    /// `fsync` calls issued for durable artifacts (spill log, compactions).
    pub durable_fsyncs: u64,
    /// Torn tails truncated: leftover logs ending mid-record at open plus
    /// failed appends repaired by truncation.
    pub durable_torn_tail_truncations: u64,
    /// Disk faults injected by the chaos layer (test/chaos builds only;
    /// always 0 in production).
    pub durable_injected_faults: u64,
    /// Evictions degraded because the disk was full: the case stayed
    /// resident (over budget) instead of losing its verdict.
    pub durable_enospc_degradations: u64,
}

impl LiveStats {
    /// Field-wise sum, for cross-shard folds.
    pub(crate) fn plus(&self, other: &LiveStats) -> LiveStats {
        LiveStats {
            entries: self.entries + other.entries,
            alarms: self.alarms + other.alarms,
            after_alarm: self.after_alarm + other.after_alarm,
            unresolved: self.unresolved + other.unresolved,
            evictions: self.evictions + other.evictions,
            rehydrations: self.rehydrations + other.rehydrations,
            retired: self.retired + other.retired,
            spilled_bytes: self.spilled_bytes + other.spilled_bytes,
            evictions_avoided: self.evictions_avoided + other.evictions_avoided,
            spill_tier_hits: self.spill_tier_hits + other.spill_tier_hits,
            spill_disk_demotions: self.spill_disk_demotions + other.spill_disk_demotions,
            spill_log_bytes: self.spill_log_bytes + other.spill_log_bytes,
            spill_compactions: self.spill_compactions + other.spill_compactions,
            cap_rebalances: self.cap_rebalances + other.cap_rebalances,
            durable_fsyncs: self.durable_fsyncs + other.durable_fsyncs,
            durable_torn_tail_truncations: self.durable_torn_tail_truncations
                + other.durable_torn_tail_truncations,
            durable_injected_faults: self.durable_injected_faults + other.durable_injected_faults,
            durable_enospc_degradations: self.durable_enospc_degradations
                + other.durable_enospc_degradations,
        }
    }

    /// Field-wise `self - earlier`, for delta-flush bookkeeping.
    pub(crate) fn minus(&self, earlier: &LiveStats) -> LiveStats {
        LiveStats {
            entries: self.entries - earlier.entries,
            alarms: self.alarms - earlier.alarms,
            after_alarm: self.after_alarm - earlier.after_alarm,
            unresolved: self.unresolved - earlier.unresolved,
            evictions: self.evictions - earlier.evictions,
            rehydrations: self.rehydrations - earlier.rehydrations,
            retired: self.retired - earlier.retired,
            spilled_bytes: self.spilled_bytes - earlier.spilled_bytes,
            evictions_avoided: self.evictions_avoided - earlier.evictions_avoided,
            spill_tier_hits: self.spill_tier_hits - earlier.spill_tier_hits,
            spill_disk_demotions: self.spill_disk_demotions - earlier.spill_disk_demotions,
            spill_log_bytes: self.spill_log_bytes - earlier.spill_log_bytes,
            spill_compactions: self.spill_compactions - earlier.spill_compactions,
            cap_rebalances: self.cap_rebalances - earlier.cap_rebalances,
            durable_fsyncs: self.durable_fsyncs - earlier.durable_fsyncs,
            durable_torn_tail_truncations: self.durable_torn_tail_truncations
                - earlier.durable_torn_tail_truncations,
            durable_injected_faults: self.durable_injected_faults - earlier.durable_injected_faults,
            durable_enospc_degradations: self.durable_enospc_degradations
                - earlier.durable_enospc_degradations,
        }
    }
}

/// The compact record an alarmed case retires into: verdict material only,
/// never the case's entry history.
#[derive(Clone, Debug, PartialEq)]
pub struct ClosedCase {
    pub case: Symbol,
    pub infringement: Infringement,
    /// Severity over the unaccounted tail. Assessed at alarm time, then
    /// updated as post-alarm entries arrive, so it converges to exactly
    /// the batch auditor's full-projection assessment once the case's
    /// stream has been fully delivered.
    pub severity: SeverityAssessment,
    /// Distinct data subjects among unaccounted entries (the severity
    /// breadth set; needed to keep absorbing post-alarm entries).
    pub subjects: BTreeSet<Symbol>,
    /// Entries observed after the alarm (counted, not stored).
    pub after_alarm: u64,
}

/// An open case resident in memory.
struct LiveCase {
    process: Arc<RegisteredProcess>,
    core: SessionCore,
    /// Trailing entry window (severity context), bounded by
    /// `max_entries_per_case`. Kept in wire form so eviction and
    /// rehydration move it as bytes; it only decodes at an alarm or a
    /// durable checkpoint.
    entries: EntryBlock,
    /// Entries shed from the front of the window.
    entries_dropped: u64,
    /// Trail-time of the last observed entry (idle-eviction clock).
    last_seen: Timestamp,
    /// LRU tick of the last observation.
    touched: u64,
    /// Hysteresis segment: `false` = probation (admitted once), `true` =
    /// protected (re-touched while resident). Victims come probation-first.
    protected: bool,
    /// Shielded from eviction until this LRU tick (rehydration debounce).
    shielded_until: u64,
}

/// A streaming auditor: feed it log entries as the systems emit them.
pub struct LiveAuditor {
    auditor: Auditor,
    config: LiveConfig,
    cases: HashMap<Symbol, LiveCase>,
    spill: SpillStore,
    closed: HashMap<Symbol, ClosedCase>,
    /// Case names in alarm order (the monitor's alarm log).
    alarm_order: Vec<Symbol>,
    /// Monotone LRU clock.
    tick: u64,
    /// Highest trail timestamp seen (idle-eviction reference).
    high_water: Option<Timestamp>,
    /// Current resident budget — starts at `config.max_open_cases`, moved
    /// by [`LiveAuditor::set_resident_cap`] (the sharded rebalancer).
    resident_cap: usize,
    stats: LiveStats,
    /// Stats already pushed to a metrics shard (delta tracking for
    /// [`LiveAuditor::flush_stats_into`]).
    flushed: LiveStats,
    /// Request tracer ([`obs::Tracer::noop`] unless serve installed one).
    tracer: obs::Tracer,
    /// Trace context for the batch currently being ingested: the request's
    /// trace id plus the parent span the spill/rehydrate spans hang off.
    trace_ctx: Option<(obs::TraceId, obs::SpanId)>,
    /// Buffered `stage_latency_us_*` samples, drained by
    /// [`LiveAuditor::flush_stats_into`] (hot paths never touch a registry).
    stage_samples: Vec<(&'static str, u64)>,
}

/// Cap on buffered stage samples between metric flushes; beyond this the
/// distribution is saturated anyway and we keep memory bounded.
const STAGE_SAMPLE_CAP: usize = 8_192;

impl LiveAuditor {
    /// A monitor with the default [`LiveConfig`].
    pub fn new(auditor: Auditor) -> LiveAuditor {
        LiveAuditor::with_config(auditor, LiveConfig::default())
    }

    pub fn with_config(auditor: Auditor, config: LiveConfig) -> LiveAuditor {
        let spill = SpillStore::new(
            config.spill_dir.clone(),
            config.mem_spill_bytes,
            config.durability,
        );
        let resident_cap = config.max_open_cases.max(1);
        LiveAuditor {
            auditor,
            config,
            cases: HashMap::new(),
            spill,
            closed: HashMap::new(),
            alarm_order: Vec::new(),
            tick: 0,
            high_water: None,
            resident_cap,
            stats: LiveStats::default(),
            flushed: LiveStats::default(),
            tracer: obs::Tracer::noop(),
            trace_ctx: None,
            stage_samples: Vec::new(),
        }
    }

    /// Install a request tracer. Spill/rehydrate latencies are always
    /// recorded as histogram samples; spans are only emitted when the
    /// tracer is enabled *and* a trace context is set for the batch.
    pub fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.tracer = tracer;
    }

    /// Set (or clear) the trace context for the entries ingested next:
    /// the request's trace id and the parent span id to link under.
    pub fn set_trace_context(&mut self, ctx: Option<(obs::TraceId, obs::SpanId)>) {
        self.trace_ctx = ctx;
    }

    /// Record one stage latency sample (bounded buffer; drained at flush)
    /// and, when tracing this batch, close a span for it.
    fn record_stage(&mut self, stage: obs::Stage, start: std::time::Instant, case: Symbol) {
        let us = start.elapsed().as_micros() as u64;
        if self.stage_samples.len() < STAGE_SAMPLE_CAP {
            self.stage_samples.push((stage.histogram_name(), us));
        }
        if let Some((trace, parent)) = self.trace_ctx {
            if self.tracer.enabled() {
                let mut open = self.tracer.begin(trace, Some(parent), stage);
                // Backdate: the span covers the measured interval, not the
                // instant we got around to reporting it.
                open.start_us = open.start_us.saturating_sub(us);
                self.tracer.finish(open, Some(&case.to_string()));
            }
        }
    }

    pub fn auditor(&self) -> &Auditor {
        &self.auditor
    }

    pub fn config(&self) -> &LiveConfig {
        &self.config
    }

    /// Number of cases resident in memory.
    pub fn open_cases(&self) -> usize {
        self.cases.len()
    }

    /// Number of cases evicted to the spill store.
    pub fn spilled_cases(&self) -> usize {
        self.spill.len()
    }

    /// All cases still being tracked (resident + spilled).
    pub fn tracked_cases(&self) -> usize {
        self.cases.len() + self.spill.len()
    }

    /// Monitor counters since construction (spill-store traffic merged in).
    pub fn stats(&self) -> LiveStats {
        let mut s = self.stats;
        let sp = self.spill.stats();
        s.spill_tier_hits = sp.tier_hits;
        s.spill_disk_demotions = sp.disk_demotions;
        s.spill_log_bytes = sp.log_bytes;
        s.spill_compactions = sp.compactions;
        s.durable_fsyncs = sp.fsyncs;
        s.durable_torn_tail_truncations = sp.torn_tail_truncations;
        s.durable_injected_faults = sp.injected_faults;
        s
    }

    /// The current resident budget.
    pub fn resident_cap(&self) -> usize {
        self.resident_cap
    }

    /// Move the resident budget (the sharded rebalancer's lever). Growth
    /// takes effect lazily; call [`LiveAuditor::shrink_to_cap`] to evict
    /// down to a reduced budget eagerly.
    pub fn set_resident_cap(&mut self, cap: usize) {
        self.resident_cap = cap.max(1);
    }

    /// Evict least-recently-active sessions until the resident set fits
    /// the current budget.
    pub fn shrink_to_cap(&mut self) -> Result<(), CheckError> {
        self.enforce_capacity(None)
    }

    /// Stale spill files removed when the spill store opened its
    /// directory (the restore-time orphan sweep).
    pub fn orphans_swept(&self) -> usize {
        self.spill.orphans_swept()
    }

    /// Alarms raised so far, in order.
    pub fn alarms(&self) -> Vec<(Symbol, &Infringement)> {
        self.alarm_order
            .iter()
            .map(|c| (*c, &self.closed[c].infringement))
            .collect()
    }

    /// Retired alarm records, in alarm order.
    pub fn closed_cases(&self) -> impl Iterator<Item = &ClosedCase> {
        self.alarm_order.iter().map(|c| &self.closed[c])
    }

    /// Observe one log entry (entries must arrive per-case in
    /// chronological order, as a log shipper would deliver them).
    pub fn observe(&mut self, entry: &LogEntry) -> Result<LiveEvent, CheckError> {
        let case = entry.case;
        self.stats.entries += 1;
        self.high_water = Some(self.high_water.map_or(entry.time, |h| h.max(entry.time)));

        // A retired case never reopens: count the activity and fold it
        // into the severity assessment (every post-alarm entry is by
        // definition unaccounted), but don't store it.
        if let Some(closed) = self.closed.get_mut(&case) {
            closed.after_alarm += 1;
            closed
                .severity
                .absorb(entry, &mut closed.subjects, &self.auditor.sensitivity);
            self.stats.after_alarm += 1;
            return Ok(LiveEvent::AfterAlarm { case });
        }

        let was_resident = self.cases.contains_key(&case);
        if !was_resident {
            if self.spill.contains(case) {
                self.rehydrate(case)?;
            } else {
                let Some(purpose) = self.auditor.resolve_case(case) else {
                    self.stats.unresolved += 1;
                    return Ok(LiveEvent::Unresolved { case });
                };
                let Some(process) = self.auditor.registry.process_for(purpose) else {
                    self.stats.unresolved += 1;
                    return Ok(LiveEvent::Unresolved { case });
                };
                let core = self.open_session(process)?;
                self.cases.insert(
                    case,
                    LiveCase {
                        process: process.clone(),
                        core,
                        entries: EntryBlock::default(),
                        entries_dropped: 0,
                        last_seen: entry.time,
                        touched: 0,
                        protected: false,
                        shielded_until: 0,
                    },
                );
            }
            // Keep the case just admitted; shed a victim if this pushed us
            // over capacity.
            self.enforce_capacity(Some(case))?;
        }

        self.tick += 1;
        let tick = self.tick;
        let promoted = {
            let live = self.cases.get_mut(&case).expect("admitted above");
            live.entries.push(entry);
            while live.entries.len() > self.config.max_entries_per_case.max(1) {
                live.entries.pop_front();
                live.entries_dropped += 1;
            }
            // Monotone: a salvaged or clock-skewed trail can carry entries
            // whose timestamps regress. `high_water` only ever rises, so
            // letting a regressing entry drag `last_seen` back down would
            // make the idle sweep see a just-touched case as stale and
            // evict it spuriously.
            live.last_seen = live.last_seen.max(entry.time);
            live.touched = tick;
            // Second touch while resident promotes probation → protected.
            let promote = was_resident && !live.protected;
            if promote {
                live.protected = true;
            }
            promote
        };
        if promoted {
            self.demote_protected_overflow(case);
        }

        let live = self.cases.get_mut(&case).expect("admitted above");
        let hierarchy = self.auditor.context.roles();
        match live.core.feed(&live.process.encoded, hierarchy, entry)? {
            FeedOutcome::Accepted { .. } => Ok(LiveEvent::Accepted { case }),
            FeedOutcome::Rejected(infringement) => {
                // Severity over the retained window: the infringing entry
                // is always the window's last element, so re-anchoring the
                // index to the window start reproduces the unbounded
                // monitor's assessment exactly. This is one of the two
                // places the wire-form window actually materializes.
                let window = live
                    .entries
                    .decode(case)
                    .map_err(|e| CheckError::Checkpoint {
                        detail: format!("case {case} entry window: {e}"),
                    })?;
                let refs: Vec<&LogEntry> = window.iter().collect();
                let window_inf = Infringement {
                    entry_index: infringement
                        .entry_index
                        .saturating_sub(live.entries_dropped as usize),
                    ..infringement.clone()
                };
                let severity = assess(&window_inf, &refs, &self.auditor.sensitivity);
                // Seed the breadth set with the subjects already counted in
                // the alarm-time assessment, so post-alarm absorption keeps
                // deduplicating against them.
                let subjects: BTreeSet<Symbol> = window[window_inf.entry_index.min(window.len())..]
                    .iter()
                    .filter_map(|e| e.object.as_ref().and_then(|o| o.subject))
                    .collect();
                self.cases.remove(&case);
                // Alarmed cases retire into the compact record: count them
                // (the P12 `retired: 0` bug) and drop any stale spill slot.
                let _ = self.spill.remove(case);
                self.closed.insert(
                    case,
                    ClosedCase {
                        case,
                        infringement: infringement.clone(),
                        severity: severity.clone(),
                        subjects,
                        after_alarm: 0,
                    },
                );
                self.alarm_order.push(case);
                self.stats.alarms += 1;
                self.stats.retired += 1;
                Ok(LiveEvent::Alarm {
                    case,
                    infringement,
                    severity,
                })
            }
        }
    }

    /// Snapshot the Algorithm-1 result for one tracked case: a resident
    /// session is finished in place, a spilled one is decoded read-only
    /// (without re-admitting it), a retired one reports its infringement.
    pub fn snapshot(&self, case: Symbol) -> Option<Result<CaseCheck, CheckError>> {
        if let Some(live) = self.cases.get(&case) {
            return Some(live.core.finish(&live.process.encoded));
        }
        if let Some(closed) = self.closed.get(&case) {
            return Some(Ok(CaseCheck {
                verdict: Verdict::Infringement(closed.infringement.clone()),
                steps: Vec::new(),
                peak_configurations: 0,
                explored_successors: 0,
                evidence: None,
            }));
        }
        if self.spill.contains(case) {
            return Some(self.peek_spilled(case));
        }
        None
    }

    /// Open a session at the process's initial configuration through the
    /// configured engine. Under [`Engine::Trie`] every live case of a
    /// process shares the process's replay trie, so a monitor churning
    /// through duplicate-heavy traffic steps mostly from cache.
    fn open_session(&self, process: &RegisteredProcess) -> Result<SessionCore, CheckError> {
        match self.auditor.options.engine {
            Engine::Trie => SessionCore::with_trie(
                &process.encoded,
                self.auditor.options,
                process.trie.clone(),
                self.auditor.context.roles(),
                obs::Recorder::noop(),
            ),
            _ => SessionCore::new(&process.encoded, self.auditor.options),
        }
    }

    /// Engine-dispatched [`SessionCore::from_interned`] (churn rehydrate).
    fn session_from_interned(
        &self,
        process: &RegisteredProcess,
        ids: Vec<cows::automaton::StateId>,
        meta: SessionMeta,
    ) -> Result<SessionCore, CheckError> {
        match self.auditor.options.engine {
            Engine::Trie => SessionCore::from_interned_with_trie(
                &process.encoded,
                self.auditor.options,
                process.trie.clone(),
                self.auditor.context.roles(),
                ids,
                meta,
            ),
            _ => SessionCore::from_interned(&process.encoded, self.auditor.options, ids, meta),
        }
    }

    /// Engine-dispatched [`SessionCore::from_state`] (durable rehydrate).
    fn session_from_state(
        &self,
        process: &RegisteredProcess,
        state: SessionState,
    ) -> Result<SessionCore, CheckError> {
        match self.auditor.options.engine {
            Engine::Trie => SessionCore::from_state_with_trie(
                &process.encoded,
                self.auditor.options,
                process.trie.clone(),
                self.auditor.context.roles(),
                state,
                obs::Recorder::noop(),
            ),
            _ => SessionCore::from_state(&process.encoded, self.auditor.options, state),
        }
    }

    fn peek_spilled(&self, case: Symbol) -> Result<CaseCheck, CheckError> {
        let bytes = self.load_spilled(case)?;
        let (process, core) = self.decode_spilled(&bytes)?;
        core.finish(&process.encoded)
    }

    /// Rebuild a session from a spilled blob without admitting it,
    /// dispatching on the envelope magic (`PCLE` churn vs durable `PCLC`).
    fn decode_spilled(
        &self,
        bytes: &[u8],
    ) -> Result<(Arc<RegisteredProcess>, SessionCore), CheckError> {
        if bytes.len() >= 4 && bytes[..4] == CHURN_MAGIC {
            let ckpt = decode_churn(bytes).map_err(|e| CheckError::Checkpoint {
                detail: e.to_string(),
            })?;
            let process = self.validated_process(ckpt.case, ckpt.purpose, ckpt.process_key)?;
            let core = self.session_from_interned(&process, ckpt.ids, ckpt.meta)?;
            Ok((process, core))
        } else {
            let ckpt = decode_case(bytes).map_err(|e| CheckError::Checkpoint {
                detail: e.to_string(),
            })?;
            let process = self.validated_process(ckpt.case, ckpt.purpose, ckpt.process_key)?;
            let core = self.session_from_state(&process, ckpt.state)?;
            Ok((process, core))
        }
    }

    /// Registry lookup + process-key check shared by every rehydration
    /// path — a spilled case keyed to a different process is a checkpoint
    /// error, never trusted.
    fn validated_process(
        &self,
        case: Symbol,
        purpose: Symbol,
        process_key: u64,
    ) -> Result<Arc<RegisteredProcess>, CheckError> {
        let process = self
            .auditor
            .registry
            .process_for(purpose)
            .ok_or(CheckError::UnknownPurpose {
                purpose: purpose.to_string(),
            })?
            .clone();
        let expected = process.encoded.snapshot_key();
        if process_key != expected {
            return Err(CheckError::Checkpoint {
                detail: format!(
                    "case {case} checkpoint keyed to a different {purpose} process \
                     (key {process_key:#018x}, registry has {expected:#018x})"
                ),
            });
        }
        Ok(process)
    }

    /// Serialize one resident open case (the eviction payload, exposed for
    /// inspection and tests).
    pub fn checkpoint_case(&self, case: Symbol) -> Option<Vec<u8>> {
        let live = self.cases.get(&case)?;
        Some(encode_case(&CaseCheckpoint {
            case,
            purpose: live.process.purpose,
            process_key: live.process.encoded.snapshot_key(),
            state: live.core.export_state(),
            entries: live.entries.decode(case).ok()?,
            entries_dropped: live.entries_dropped,
            last_seen: live.last_seen,
        }))
    }

    /// Evict one resident case to the spill store. No-op result for a case
    /// that is not resident.
    ///
    /// Automaton-engine sessions travel as the run-local `PCLE` churn
    /// envelope — raw state ids, no term serialization — which is what
    /// makes eviction cheap enough for an undersized cap. Direct-engine
    /// sessions have no shared automaton to point into and fall back to
    /// the durable `PCLC` encoding.
    pub fn evict(&mut self, case: Symbol) -> Result<(), CheckError> {
        let Some(live) = self.cases.get(&case) else {
            return Ok(());
        };
        let spill_start = std::time::Instant::now();
        let bytes = match live.core.conf_ids() {
            Some(ids) => encode_churn(&ChurnCheckpoint {
                case,
                purpose: live.process.purpose,
                process_key: live.process.encoded.snapshot_key(),
                ids: ids.to_vec(),
                meta: live.core.export_meta(),
                // The window splices into the envelope as bytes — eviction
                // cost is O(ids), not O(window).
                entries: live.entries.clone(),
                entries_dropped: live.entries_dropped,
                last_seen: live.last_seen,
            }),
            None => self.checkpoint_case(case).expect("checked resident above"),
        };
        match self.spill.insert(case, &bytes) {
            Ok(()) => {}
            Err(e) if e.is_no_space() => {
                // Disk full. Degrade instead of failing: the case stays
                // resident (over budget) with its verdict intact — memory
                // pressure is recoverable, a lost case is not. The
                // capacity loop treats an unshrunk resident set as final.
                // Drop whatever the store buffered for the failed insert
                // so the resident case is the single source of truth.
                let _ = self.spill.remove(case);
                self.stats.durable_enospc_degradations += 1;
                obs::flight::record(|| obs::ObsEvent::Diagnostic {
                    detail: format!("ENOSPC degradation: case {case} stays resident over budget"),
                });
                obs::flight::dump("enospc degradation");
                return Ok(());
            }
            Err(e) => {
                obs::flight::record(|| obs::ObsEvent::Diagnostic {
                    detail: format!("spill I/O error for case {case}: {e}"),
                });
                obs::flight::dump("spill io error");
                return Err(CheckError::Checkpoint {
                    detail: e.to_string(),
                });
            }
        }
        self.stats.spilled_bytes += bytes.len() as u64;
        self.cases.remove(&case);
        self.stats.evictions += 1;
        self.record_stage(obs::Stage::Spill, spill_start, case);
        Ok(())
    }

    fn load_spilled(&self, case: Symbol) -> Result<Vec<u8>, CheckError> {
        self.spill
            .peek(case)
            .map_err(|e| CheckError::Checkpoint {
                detail: e.to_string(),
            })?
            .ok_or_else(|| CheckError::Checkpoint {
                detail: format!("case {case} is not in the spill store"),
            })
    }

    /// Rebuild an evicted session and re-admit it, shielded from the next
    /// few evictions (the churn debounce).
    fn rehydrate(&mut self, case: Symbol) -> Result<(), CheckError> {
        let rehydrate_start = std::time::Instant::now();
        let bytes = self
            .spill
            .take(case)
            .map_err(|e| CheckError::Checkpoint {
                detail: e.to_string(),
            })?
            .ok_or_else(|| CheckError::Checkpoint {
                detail: format!("case {case} is not in the spill store"),
            })?;
        let (process, core, entries, entries_dropped, last_seen) =
            if bytes.len() >= 4 && bytes[..4] == CHURN_MAGIC {
                let ckpt = decode_churn(&bytes).map_err(|e| CheckError::Checkpoint {
                    detail: e.to_string(),
                })?;
                let process = self.validated_process(ckpt.case, ckpt.purpose, ckpt.process_key)?;
                let core = self.session_from_interned(&process, ckpt.ids, ckpt.meta)?;
                (
                    process,
                    core,
                    ckpt.entries,
                    ckpt.entries_dropped,
                    ckpt.last_seen,
                )
            } else {
                let ckpt = decode_case(&bytes).map_err(|e| CheckError::Checkpoint {
                    detail: e.to_string(),
                })?;
                let process = self.validated_process(ckpt.case, ckpt.purpose, ckpt.process_key)?;
                let core = self.session_from_state(&process, ckpt.state)?;
                (
                    process,
                    core,
                    EntryBlock::from_entries(&ckpt.entries),
                    ckpt.entries_dropped,
                    ckpt.last_seen,
                )
            };
        self.tick += 1;
        let shielded_until = self.config.eviction_debounce.map_or(0, |d| self.tick + d);
        self.cases.insert(
            case,
            LiveCase {
                process,
                core,
                entries,
                entries_dropped,
                last_seen,
                touched: self.tick,
                protected: false,
                shielded_until,
            },
        );
        self.stats.rehydrations += 1;
        self.record_stage(obs::Stage::Rehydrate, rehydrate_start, case);
        Ok(())
    }

    /// Build a resident [`LiveCase`] from a decoded durable checkpoint
    /// (the restore path), validating it against the current registry.
    fn admit(&mut self, ckpt: CaseCheckpoint) -> Result<LiveCase, CheckError> {
        let process = self.validated_process(ckpt.case, ckpt.purpose, ckpt.process_key)?;
        let core = self.session_from_state(&process, ckpt.state)?;
        self.tick += 1;
        Ok(LiveCase {
            process,
            core,
            entries: EntryBlock::from_entries(&ckpt.entries),
            entries_dropped: ckpt.entries_dropped,
            last_seen: ckpt.last_seen,
            touched: self.tick,
            protected: false,
            shielded_until: 0,
        })
    }

    /// The protected segment's share of the resident budget.
    fn protected_cap(&self) -> usize {
        (self.resident_cap * 3 / 4).max(1)
    }

    /// Demote least-recently-touched protected cases back to probation
    /// until the protected segment fits its share, sparing `keep` (the
    /// case whose promotion triggered the check).
    fn demote_protected_overflow(&mut self, keep: Symbol) {
        let cap = self.protected_cap();
        loop {
            let over = self.cases.values().filter(|l| l.protected).count() > cap;
            if !over {
                return;
            }
            let victim = self
                .cases
                .iter()
                .filter(|(c, l)| **c != keep && l.protected)
                .min_by_key(|(_, l)| l.touched)
                .map(|(c, _)| *c);
            match victim {
                Some(v) => self.cases.get_mut(&v).expect("from iter above").protected = false,
                None => return,
            }
        }
    }

    /// Evict sessions until the resident set fits the budget, never
    /// shedding `keep`.
    ///
    /// Victim order is the hysteresis policy: unshielded probation first,
    /// then unshielded protected, then — only when every candidate is
    /// shielded — plain LRU. Whenever that order spares the globally
    /// least-recently-touched case, `evictions_avoided` counts the save.
    fn enforce_capacity(&mut self, keep: Option<Symbol>) -> Result<(), CheckError> {
        while self.cases.len() > self.resident_cap {
            let tick = self.tick;
            let candidates = || self.cases.iter().filter(|(c, _)| keep != Some(**c));
            let global_lru = candidates().min_by_key(|(_, l)| l.touched).map(|(c, _)| *c);
            let Some(global_lru) = global_lru else {
                break;
            };
            let victim = candidates()
                .filter(|(_, l)| !l.protected && l.shielded_until <= tick)
                .min_by_key(|(_, l)| l.touched)
                .map(|(c, _)| *c)
                .or_else(|| {
                    candidates()
                        .filter(|(_, l)| l.protected && l.shielded_until <= tick)
                        .min_by_key(|(_, l)| l.touched)
                        .map(|(c, _)| *c)
                })
                .unwrap_or(global_lru);
            if victim != global_lru {
                self.stats.evictions_avoided += 1;
            }
            let before = self.cases.len();
            self.evict(victim)?;
            if self.cases.len() == before {
                // The eviction degraded (disk full, case kept resident):
                // no further eviction can shrink the set either, so stop
                // instead of spinning.
                break;
            }
        }
        Ok(())
    }

    /// Idle sweep: evict resident cases whose last entry is more than
    /// `idle_eviction` trail-minutes behind the monitor's high-water
    /// timestamp. Returns the evicted case names (sorted).
    pub fn maintain(&mut self) -> Result<Vec<Symbol>, CheckError> {
        let (Some(idle), Some(high)) = (self.config.idle_eviction, self.high_water) else {
            return Ok(Vec::new());
        };
        let mut idle_cases: Vec<Symbol> = self
            .cases
            .iter()
            .filter(|(_, l)| high.0.saturating_sub(l.last_seen.0) > idle)
            .map(|(c, _)| *c)
            .collect();
        idle_cases.sort();
        for &c in &idle_cases {
            self.evict(c)?;
        }
        Ok(idle_cases)
    }

    /// Drop cases whose process has completed (every configuration can
    /// silently terminate) — the live monitor's garbage collection.
    ///
    /// Returns the retired case names plus any per-case machinery errors.
    /// A case whose `finish` fails is *kept open* — one broken case must
    /// never wipe the monitor — and reported alongside; it will be retried
    /// on the next sweep (or evicted like any idle case).
    pub fn retire_completed(&mut self) -> (Vec<Symbol>, Vec<(Symbol, CheckError)>) {
        let mut retired = Vec::new();
        let mut errors = Vec::new();
        let done: Vec<Symbol> = self
            .cases
            .iter()
            .filter_map(|(case, live)| {
                debug_assert!(!live.core.is_closed(), "closed cases retire at alarm");
                match live.core.finish(&live.process.encoded) {
                    Ok(check) => (check.verdict == Verdict::Compliant { can_complete: true })
                        .then_some(*case),
                    Err(e) => {
                        errors.push((*case, e));
                        None
                    }
                }
            })
            .collect();
        for case in done {
            self.cases.remove(&case);
            // Spill-store hygiene: a retired case must leave no blob (or
            // dead log record) behind.
            if let Err(e) = self.spill.remove(case) {
                errors.push((
                    case,
                    CheckError::Checkpoint {
                        detail: e.to_string(),
                    },
                ));
            }
            self.stats.retired += 1;
            retired.push(case);
        }
        retired.sort();
        errors.sort_by_key(|(c, _)| *c);
        (retired, errors)
    }

    /// Serialize the whole monitor: stream offset, every open case
    /// (resident and spilled), retired records and alarm order.
    pub fn checkpoint(&self, stream_offset: u64) -> Result<Vec<u8>, CheckError> {
        let mut cases: Vec<CaseCheckpoint> = Vec::with_capacity(self.tracked_cases());
        let mut names: Vec<Symbol> = self.cases.keys().copied().collect();
        names.sort();
        for case in names {
            let live = &self.cases[&case];
            cases.push(CaseCheckpoint {
                case,
                purpose: live.process.purpose,
                process_key: live.process.encoded.snapshot_key(),
                state: live.core.export_state(),
                entries: live
                    .entries
                    .decode(case)
                    .map_err(|e| CheckError::Checkpoint {
                        detail: format!("case {case} entry window: {e}"),
                    })?,
                entries_dropped: live.entries_dropped,
                last_seen: live.last_seen,
            });
        }
        let mut names: Vec<Symbol> = self.spill.cases();
        names.sort();
        for case in names {
            let bytes = self.load_spilled(case)?;
            // Churn blobs never cross a run boundary: materialize them into
            // the durable encoding (a rebuilt session's `export_state`, so
            // the checkpoint is identical to an unevicted monitor's).
            if bytes.len() >= 4 && bytes[..4] == CHURN_MAGIC {
                let ckpt = decode_churn(&bytes).map_err(|e| CheckError::Checkpoint {
                    detail: e.to_string(),
                })?;
                let (process, core) = self.decode_spilled(&bytes)?;
                cases.push(CaseCheckpoint {
                    case,
                    purpose: ckpt.purpose,
                    process_key: process.encoded.snapshot_key(),
                    state: core.export_state(),
                    entries: ckpt
                        .entries
                        .decode(case)
                        .map_err(|e| CheckError::Checkpoint {
                            detail: format!("case {case} entry window: {e}"),
                        })?,
                    entries_dropped: ckpt.entries_dropped,
                    last_seen: ckpt.last_seen,
                });
            } else {
                cases.push(decode_case(&bytes).map_err(|e| CheckError::Checkpoint {
                    detail: e.to_string(),
                })?);
            }
        }
        let closed = self
            .alarm_order
            .iter()
            .map(|c| self.closed[c].clone())
            .collect();
        Ok(crate::checkpoint::encode_monitor(&MonitorCheckpoint {
            stream_offset,
            cases,
            closed,
            alarm_order: self.alarm_order.clone(),
        }))
    }

    /// Rebuild a monitor from a [`LiveAuditor::checkpoint`] blob. Open
    /// cases beyond `max_open_cases` are spilled immediately (most-recent
    /// cases stay resident). Returns the monitor and the checkpoint's
    /// stream offset.
    pub fn restore(
        auditor: Auditor,
        config: LiveConfig,
        bytes: &[u8],
    ) -> Result<(LiveAuditor, u64), RestoreError> {
        let ckpt = crate::checkpoint::decode_monitor(bytes)?;
        let resident_cap = config.max_open_cases.max(1);
        let mut monitor = LiveAuditor::with_config(auditor, config);
        for c in &ckpt.cases {
            // Validate every case against the registry up front, spilled
            // ones included, so a stale checkpoint fails atomically.
            let process = monitor.auditor.registry.process_for(c.purpose).ok_or(
                RestoreError::UnknownPurpose {
                    case: c.case.to_string(),
                    purpose: c.purpose.to_string(),
                },
            )?;
            let expected = process.encoded.snapshot_key();
            if c.process_key != expected {
                return Err(RestoreError::ProcessKeyMismatch {
                    purpose: c.purpose.to_string(),
                    found: c.process_key,
                    expected,
                });
            }
        }
        // Most-recently-active cases stay resident.
        let mut order: Vec<usize> = (0..ckpt.cases.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(ckpt.cases[i].last_seen));
        let resident: std::collections::HashSet<usize> =
            order.iter().take(resident_cap).copied().collect();
        for (i, c) in ckpt.cases.into_iter().enumerate() {
            let case = c.case;
            monitor.high_water = Some(
                monitor
                    .high_water
                    .map_or(c.last_seen, |h| h.max(c.last_seen)),
            );
            if resident.contains(&i) {
                let live = monitor.admit(c)?;
                monitor.cases.insert(case, live);
            } else {
                // Restored-but-not-resident cases enter the spill store in
                // the durable encoding; their first entry rehydrates them
                // through the magic-dispatched path like any other blob.
                monitor
                    .spill
                    .insert(case, &encode_case(&c))
                    .map_err(|e| RestoreError::Codec(cows::SnapshotError::Io(e.to_string())))?;
            }
        }
        for c in ckpt.closed {
            monitor.closed.insert(c.case, c);
        }
        monitor.alarm_order = ckpt.alarm_order;
        Ok((monitor, ckpt.stream_offset))
    }

    /// Push counter deltas since the last flush into an `obs` shard —
    /// the same one-lock-per-worker pattern as `audit_parallel`. Repeated
    /// flushes never double-count: only growth since the previous flush is
    /// recorded.
    pub fn flush_stats_into(&mut self, shard: &mut obs::Shard) {
        let s = self.stats();
        crate::metrics::record_live_metrics(shard, &s.minus(&self.flushed));
        self.flushed = s;
        for (name, us) in self.stage_samples.drain(..) {
            shard.observe(name, us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::ProcessRegistry;
    use audit::samples::figure4_trail;
    use bpmn::models::{clinical_trial, healthcare_treatment};
    use cows::sym;
    use policy::samples::{
        clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
    };

    fn auditor() -> Auditor {
        let mut registry = ProcessRegistry::new();
        registry.register(treatment(), healthcare_treatment());
        registry.register(clinical_trial_purpose(), clinical_trial());
        registry.add_case_prefix("HT-", treatment());
        registry.add_case_prefix("CT-", clinical_trial_purpose());
        Auditor::new(registry, extended_hospital_policy(), hospital_context())
    }

    fn live() -> LiveAuditor {
        LiveAuditor::new(auditor())
    }

    #[test]
    fn streams_the_fig4_trail_and_alarms_on_the_sweep() {
        let mut monitor = live();
        let trail = figure4_trail();
        let mut alarm_cases = Vec::new();
        for e in &trail {
            if let LiveEvent::Alarm { case, .. } = monitor.observe(e).unwrap() {
                alarm_cases.push(case.to_string());
            }
        }
        // The five printed sweep cases each alarm on their very first
        // (and only) entry — detection latency of one log entry.
        assert_eq!(
            alarm_cases,
            vec!["HT-10", "HT-11", "HT-20", "HT-21", "HT-30"]
        );
        // The legitimate cases never alarmed.
        assert!(monitor
            .snapshot(sym("HT-1"))
            .unwrap()
            .unwrap()
            .verdict
            .is_compliant());
        assert!(monitor
            .snapshot(sym("CT-1"))
            .unwrap()
            .unwrap()
            .verdict
            .is_compliant());
    }

    #[test]
    fn entries_after_an_alarm_are_counted_not_stored() {
        let mut monitor = live();
        let bad = audit::codec::parse_trail(
            "Bob Cardiologist read [Jane]EPR/Clinical T06 HT-99 201007060900 success\n\
             Bob Cardiologist read [Jane]EPR/Clinical T06 HT-99 201007060905 success\n\
             Bob Cardiologist read [Jane]EPR/Clinical T06 HT-99 201007060910 success\n",
        )
        .unwrap();
        let mut events = Vec::new();
        for e in &bad {
            events.push(monitor.observe(e).unwrap());
        }
        assert!(events[0].is_alarm());
        assert!(matches!(events[1], LiveEvent::AfterAlarm { .. }));
        assert!(matches!(events[2], LiveEvent::AfterAlarm { .. }));
        assert_eq!(monitor.alarms().len(), 1);
        // The satellite bugfix: post-alarm entries are a counter on the
        // compact record, not stored history.
        let closed = monitor.closed_cases().next().unwrap();
        assert_eq!(closed.after_alarm, 2);
        assert_eq!(monitor.open_cases(), 0, "alarmed case retired");
        assert_eq!(monitor.stats().after_alarm, 2);
    }

    #[test]
    fn clock_regressing_entry_does_not_trigger_spurious_idle_eviction() {
        // Salvaged/skewed trails can carry entries whose timestamps
        // regress. `high_water` is monotone, so if a regressing entry
        // dragged `last_seen` backwards the idle sweep would evict a case
        // that was touched moments ago.
        let mut monitor = LiveAuditor::with_config(
            auditor(),
            LiveConfig {
                idle_eviction: Some(60),
                ..LiveConfig::default()
            },
        );
        // A valid treatment prefix; the second entry jumps 20 days ahead
        // (inflating the high-water mark), the third regresses back near
        // the start (clock skew). `parse_trail` sorts chronologically, so
        // parse line-by-line and feed in delivery order — exactly what a
        // tailing monitor sees across poll chunks.
        let lines = [
            "John GP read [Jane]EPR/Clinical T01 HT-77 201007060900 success\n",
            "John GP write [Jane]EPR/Clinical T02 HT-77 201007260900 success\n",
            "John GP cancel N/A T02 HT-77 201007060905 failure\n",
        ];
        for line in lines {
            let trail = audit::codec::parse_trail(line).unwrap();
            let ev = monitor.observe(&trail.entries()[0]).unwrap();
            assert!(!ev.is_alarm(), "prefix is compliant");
        }
        assert_eq!(monitor.open_cases(), 1);
        // The case saw an entry at the current high-water instant; it is
        // not idle, and the sweep must leave it resident.
        let evicted = monitor.maintain().unwrap();
        assert!(evicted.is_empty(), "spurious idle eviction of a hot case");
        assert_eq!(monitor.open_cases(), 1);
    }

    #[test]
    fn unresolved_cases_are_reported() {
        let mut monitor = live();
        let e = audit::codec::parse_trail(
            "Bob Cardiologist read [Jane]EPR/Clinical T06 XX-1 201007060900 success\n",
        )
        .unwrap();
        let ev = monitor.observe(&e.entries()[0]).unwrap();
        assert!(matches!(ev, LiveEvent::Unresolved { .. }));
        assert_eq!(monitor.open_cases(), 0);
        assert_eq!(monitor.stats().unresolved, 1);
    }

    #[test]
    fn completed_cases_retire() {
        let mut monitor = live();
        let trail = figure4_trail();
        for e in trail.project_case(sym("HT-1")) {
            monitor.observe(e).unwrap();
        }
        assert_eq!(monitor.open_cases(), 1);
        let (retired, errors) = monitor.retire_completed();
        assert_eq!(retired, vec![sym("HT-1")]);
        assert!(errors.is_empty());
        assert_eq!(monitor.open_cases(), 0);
        assert_eq!(monitor.stats().retired, 1);
    }

    #[test]
    fn retire_sweep_survives_finish_errors_without_losing_cases() {
        // Regression for the drain-and-`?` bug: one case whose `finish`
        // fails (τ-budget exhausted at verdict time) used to wipe every
        // tracked case — including completed ones — from the monitor. Now
        // the error is reported per case and nothing is lost.
        let mut a = auditor();
        // Direct engine: quiescence runs uncached, so a shrunk τ-budget
        // actually bites at finish time.
        a.options.engine = crate::replay::Engine::Direct;
        let mut monitor = LiveAuditor::new(a);
        let trail = figure4_trail();
        // HT-1 completes; CT-1 stops mid-process (all but its last entry).
        for e in trail.project_case(sym("HT-1")) {
            monitor.observe(e).unwrap();
        }
        let partial = trail.project_case(sym("CT-1"));
        for e in &partial[..partial.len() - 1] {
            monitor.observe(e).unwrap();
        }
        assert_eq!(monitor.open_cases(), 2);
        // Starve CT-1's verdict-time quiescence search after the fact.
        monitor
            .cases
            .get_mut(&sym("CT-1"))
            .unwrap()
            .core
            .set_weaknext_limits(cows::weaknext::WeakNextLimits { max_tau_states: 1 });
        let (retired, errors) = monitor.retire_completed();
        // The completed case still retires, the broken one is kept open
        // and reported — never silently dropped.
        assert_eq!(retired, vec![sym("HT-1")]);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, sym("CT-1"));
        assert!(matches!(errors[0].1, CheckError::Explore(_)));
        assert_eq!(monitor.open_cases(), 1, "erroring case must survive");
        assert!(monitor.snapshot(sym("CT-1")).unwrap().is_err());
    }

    #[test]
    fn severity_window_is_bounded_per_case() {
        let config = LiveConfig {
            max_entries_per_case: 2,
            ..LiveConfig::default()
        };
        let mut monitor = LiveAuditor::with_config(auditor(), config);
        let trail = figure4_trail();
        for e in trail.project_case(sym("HT-1")) {
            monitor.observe(e).unwrap();
        }
        let live = monitor.cases.get(&sym("HT-1")).unwrap();
        assert!(live.entries.len() <= 2);
        assert_eq!(
            live.entries_dropped as usize + live.entries.len(),
            trail.project_case(sym("HT-1")).len()
        );
    }

    #[test]
    fn eviction_and_rehydration_preserve_verdicts() {
        let config = LiveConfig {
            max_open_cases: 2,
            ..LiveConfig::default()
        };
        let mut monitor = LiveAuditor::with_config(auditor(), config);
        let trail = figure4_trail();
        for e in &trail {
            monitor.observe(e).unwrap();
        }
        assert!(monitor.open_cases() <= 2, "capacity bound holds");
        assert!(monitor.stats().evictions > 0, "eviction actually happened");
        // Every case (resident, spilled or retired) still answers with the
        // batch verdict.
        let batch = monitor.auditor().audit(&trail);
        for case in &batch.cases {
            let live_verdict = monitor
                .snapshot(case.case)
                .expect("case tracked")
                .expect("no machinery error");
            assert_eq!(
                live_verdict.verdict.is_compliant(),
                case.outcome.is_compliant(),
                "case {} disagrees between live and batch",
                case.case
            );
        }
    }

    #[test]
    fn evicted_case_checkpoint_is_byte_identical_after_rehydration() {
        let mut monitor = live();
        let trail = figure4_trail();
        let case = sym("HT-1");
        let entries = trail.project_case(case);
        // Feed all but the last entry, snapshot, evict, rehydrate (by
        // feeding the last entry), and compare against an unevicted twin.
        let mut twin = live();
        for e in &entries[..entries.len() - 1] {
            monitor.observe(e).unwrap();
            twin.observe(e).unwrap();
        }
        let before = monitor.checkpoint_case(case).unwrap();
        assert_eq!(before, twin.checkpoint_case(case).unwrap());
        monitor.evict(case).unwrap();
        assert_eq!(monitor.open_cases(), 0);
        assert_eq!(monitor.spilled_cases(), 1);
        // Rehydration is transparent: the next entry re-admits the case…
        monitor.observe(entries[entries.len() - 1]).unwrap();
        twin.observe(entries[entries.len() - 1]).unwrap();
        assert_eq!(monitor.stats().rehydrations, 1);
        // …and the rebuilt session's checkpoint is byte-identical to the
        // twin that never left memory.
        assert_eq!(
            monitor.checkpoint_case(case).unwrap(),
            twin.checkpoint_case(case).unwrap()
        );
    }

    #[test]
    fn idle_cases_are_swept_by_maintain() {
        let config = LiveConfig {
            idle_eviction: Some(30),
            ..LiveConfig::default()
        };
        let mut monitor = LiveAuditor::with_config(auditor(), config);
        let trail = figure4_trail();
        for e in &trail {
            monitor.observe(e).unwrap();
        }
        // Fig. 4 case times span more than 30 minutes, so at least one
        // case trails the high-water mark far enough to be idle.
        let evicted = monitor.maintain().unwrap();
        assert!(!evicted.is_empty());
        for c in &evicted {
            assert!(monitor.spill.contains(*c));
        }
    }

    #[test]
    fn monitor_checkpoint_restores_alarms_offset_and_sessions() {
        let config = LiveConfig {
            max_open_cases: 2,
            ..LiveConfig::default()
        };
        let mut monitor = LiveAuditor::with_config(auditor(), config.clone());
        let trail = figure4_trail();
        for e in &trail {
            monitor.observe(e).unwrap();
        }
        let alarms_before: Vec<Symbol> = monitor.alarms().iter().map(|(c, _)| *c).collect();
        let bytes = monitor.checkpoint(777).unwrap();

        let (restored, offset) = LiveAuditor::restore(auditor(), config, &bytes).unwrap();
        assert_eq!(offset, 777);
        let alarms_after: Vec<Symbol> = restored.alarms().iter().map(|(c, _)| *c).collect();
        assert_eq!(alarms_before, alarms_after);
        assert_eq!(restored.tracked_cases(), monitor.tracked_cases());
        assert!(restored.open_cases() <= 2);
        // A post-alarm entry on a restored retired case is still counted.
        let mut restored = restored;
        let bad = audit::codec::parse_trail(
            "Bob Cardiologist read [Jane]EPR/Clinical T06 HT-10 201007060900 success\n",
        )
        .unwrap();
        let ev = restored.observe(&bad.entries()[0]).unwrap();
        assert!(matches!(ev, LiveEvent::AfterAlarm { .. }));
        // Restored open sessions replay on: checkpoints re-encode
        // identically for every tracked case.
        for case in trail.cases() {
            match (monitor.snapshot(case), restored.snapshot(case)) {
                (Some(a), Some(b)) => {
                    assert_eq!(
                        a.unwrap().verdict.is_compliant(),
                        b.unwrap().verdict.is_compliant()
                    );
                }
                (a, b) => assert_eq!(a.is_some(), b.is_some()),
            }
        }
    }

    #[test]
    fn alarmed_cases_count_as_retired() {
        // Regression for the P12 `retired: 0` bug: retiring into a
        // `ClosedCase` at alarm time is a retirement and must be counted.
        let mut monitor = live();
        let bad = audit::codec::parse_trail(
            "Bob Cardiologist read [Jane]EPR/Clinical T06 HT-99 201007060900 success\n",
        )
        .unwrap();
        assert!(monitor.observe(&bad.entries()[0]).unwrap().is_alarm());
        assert_eq!(monitor.stats().retired, 1);
        // retire_completed keeps counting on top.
        let trail = figure4_trail();
        for e in trail.project_case(sym("HT-1")) {
            monitor.observe(e).unwrap();
        }
        monitor.retire_completed();
        assert_eq!(monitor.stats().retired, 2);
    }

    #[test]
    fn memory_tier_serves_rehydrations_without_disk() {
        // No spill_dir: every spill lands in the memory tier, so every
        // rehydration must be a tier hit and the log must stay untouched.
        let config = LiveConfig {
            max_open_cases: 2,
            ..LiveConfig::default()
        };
        let mut monitor = LiveAuditor::with_config(auditor(), config);
        let trail = figure4_trail();
        for e in &trail {
            monitor.observe(e).unwrap();
        }
        let stats = monitor.stats();
        assert!(stats.rehydrations > 0, "pressure must actually bite");
        assert_eq!(stats.spill_tier_hits, stats.rehydrations);
        assert_eq!(stats.spill_disk_demotions, 0);
        assert_eq!(stats.spill_log_bytes, 0);
    }

    #[test]
    fn rehydration_shield_overrides_plain_lru() {
        // Four cases against a budget of two, each replaying the (valid)
        // HT-1 entry sequence under its own name. The interleaving is
        // chosen so the globally least-recently-touched case is shielded
        // by a fresh rehydration exactly when capacity next bites.
        let ht1: Vec<LogEntry> = figure4_trail()
            .project_case(sym("HT-1"))
            .into_iter()
            .cloned()
            .collect();
        let entry_for = |case: &str, step: usize| LogEntry {
            case: sym(case),
            ..ht1[step].clone()
        };
        let config = LiveConfig {
            max_open_cases: 2,
            eviction_debounce: Some(100),
            ..LiveConfig::default()
        };
        let mut monitor = LiveAuditor::with_config(auditor(), config);
        monitor.observe(&entry_for("HT-a", 0)).unwrap(); // resident: a
        monitor.observe(&entry_for("HT-b", 0)).unwrap(); // resident: a b
        monitor.observe(&entry_for("HT-c", 0)).unwrap(); // evicts a (plain LRU)
        assert!(!monitor.cases.contains_key(&sym("HT-a")));
        monitor.observe(&entry_for("HT-a", 1)).unwrap(); // rehydrates a (shielded), evicts b
        assert_eq!(monitor.stats().rehydrations, 1);
        monitor.observe(&entry_for("HT-c", 1)).unwrap(); // touches c (→ protected)
                                                         // Admitting d: the global LRU is the shielded a; the policy must
                                                         // spare it and take c instead.
        monitor.observe(&entry_for("HT-d", 0)).unwrap();
        assert!(
            monitor.cases.contains_key(&sym("HT-a")),
            "shielded case must survive"
        );
        assert!(!monitor.cases.contains_key(&sym("HT-c")));
        assert_eq!(monitor.stats().evictions_avoided, 1);
    }

    #[test]
    fn churn_spill_reaches_the_log_and_still_matches_batch() {
        // A spill directory plus a zero-byte memory tier forces every
        // eviction through the append-only log — the worst case for the
        // churn path — and verdicts must still match batch exactly.
        let dir = std::env::temp_dir()
            .join("purposectl-tests")
            .join(format!("live-log-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = LiveConfig {
            max_open_cases: 2,
            mem_spill_bytes: 0,
            spill_dir: Some(dir.clone()),
            ..LiveConfig::default()
        };
        let mut monitor = LiveAuditor::with_config(auditor(), config);
        let trail = figure4_trail();
        for e in &trail {
            monitor.observe(e).unwrap();
        }
        let stats = monitor.stats();
        assert!(stats.evictions > 0);
        assert!(stats.spill_disk_demotions > 0, "the log must be exercised");
        let batch = monitor.auditor().audit(&trail);
        for case in &batch.cases {
            let live_verdict = monitor.snapshot(case.case).unwrap().unwrap();
            assert_eq!(
                live_verdict.verdict.is_compliant(),
                case.outcome.is_compliant(),
                "case {} disagrees between live and batch",
                case.case
            );
        }
        drop(monitor);
        assert!(
            !dir.join("spill.log").exists(),
            "run-scoped log removed on drop"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_sweeps_orphaned_spill_files() {
        let dir = std::env::temp_dir()
            .join("purposectl-tests")
            .join(format!("live-orphans-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("HT-9-deadbeefdeadbeef.pclc"), b"stale").unwrap();
        std::fs::write(dir.join("spill.log"), b"stale log").unwrap();

        let mut monitor = live();
        let trail = figure4_trail();
        for e in &trail {
            monitor.observe(e).unwrap();
        }
        let bytes = monitor.checkpoint(0).unwrap();
        let config = LiveConfig {
            spill_dir: Some(dir.clone()),
            ..LiveConfig::default()
        };
        let (restored, _) = LiveAuditor::restore(auditor(), config, &bytes).unwrap();
        assert_eq!(restored.orphans_swept(), 2);
        assert!(!dir.join("HT-9-deadbeefdeadbeef.pclc").exists());
        drop(restored);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_rejects_a_changed_process() {
        let mut monitor = live();
        let trail = figure4_trail();
        for e in trail.project_case(sym("HT-1")) {
            monitor.observe(e).unwrap();
        }
        let bytes = monitor.checkpoint(0).unwrap();
        // A registry whose treatment process differs (clinical trial model
        // under the treatment purpose) must refuse the checkpoint.
        let mut registry = ProcessRegistry::new();
        registry.register(treatment(), clinical_trial());
        registry.add_case_prefix("HT-", treatment());
        let other = Auditor::new(registry, extended_hospital_policy(), hospital_context());
        match LiveAuditor::restore(other, LiveConfig::default(), &bytes) {
            Err(RestoreError::ProcessKeyMismatch { .. }) => {}
            Err(e) => panic!("wrong restore error: {e}"),
            Ok(_) => panic!("restore must reject a changed process"),
        }
    }

    #[test]
    fn enospc_degrades_without_losing_resident_verdicts() {
        use crate::durable::fault;
        // A full disk from the very first spill write: every eviction
        // attempt fails with ENOSPC. The monitor must degrade — keep the
        // cases resident, over budget — and still agree with batch on
        // every verdict.
        let dir = std::env::temp_dir()
            .join("purposectl-tests")
            .join(format!("live-enospc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        fault::arm(fault::FaultPlan::new(&dir, fault::FaultKind::Enospc, 1));
        let config = LiveConfig {
            max_open_cases: 2,
            mem_spill_bytes: 0,
            spill_dir: Some(dir.clone()),
            durability: SyncPolicy::Always,
            ..LiveConfig::default()
        };
        let mut monitor = LiveAuditor::with_config(auditor(), config);
        let trail = figure4_trail();
        for e in &trail {
            monitor.observe(e).unwrap();
        }
        let stats = monitor.stats();
        assert!(
            stats.durable_enospc_degradations > 0,
            "the full disk must have been hit: {stats:?}"
        );
        assert_eq!(stats.evictions, 0, "nothing actually left memory");
        assert!(
            monitor.open_cases() > 2,
            "degradation keeps cases resident over budget"
        );
        let batch = monitor.auditor().audit(&trail);
        for case in &batch.cases {
            let live_verdict = monitor.snapshot(case.case).unwrap().unwrap();
            assert_eq!(
                live_verdict.verdict.is_compliant(),
                case.outcome.is_compliant(),
                "case {} lost its verdict under ENOSPC",
                case.case
            );
        }
        fault::disarm(&dir);
        drop(monitor);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
