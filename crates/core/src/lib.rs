//! # Purpose control
//!
//! A-posteriori verification that data were processed only for their
//! intended purpose — the primary contribution of Petković, Prandi and
//! Zannone, *"Purpose Control: Did You Process the Data for the Intended
//! Purpose?"* (SDM @ VLDB 2011).
//!
//! The crate implements:
//!
//! * [`replay`] — **Algorithm 1**: replay of a per-case audit trail against
//!   the COWS encoding of the process implementing the purpose, via
//!   configurations (Def. 6) and `WeakNext` (Def. 7);
//! * [`auditor`] — the full pipeline: preventive Def. 3 checks, case
//!   grouping, purpose resolution, per-case replay and reporting;
//! * [`parallel`] — the §7 "massive parallelization" across cases;
//! * [`severity`] — the §7 future-work severity metrics for triaging
//!   infringements;
//! * [`naive`] — the §1 naïve trace-enumeration baseline, implemented to
//!   reproduce its blow-up.
//!
//! ## Example: the paper's running scenario
//!
//! ```
//! use purpose_control::auditor::{Auditor, ProcessRegistry};
//! use bpmn::models::{clinical_trial, healthcare_treatment};
//! use policy::samples::{clinical_trial_purpose, extended_hospital_policy,
//!                       hospital_context, treatment};
//! use audit::samples::figure4_trail;
//! use cows::sym;
//!
//! let mut registry = ProcessRegistry::new();
//! registry.register(treatment(), healthcare_treatment());
//! registry.register(clinical_trial_purpose(), clinical_trial());
//! registry.add_case_prefix("HT-", treatment());
//! registry.add_case_prefix("CT-", clinical_trial_purpose());
//! let auditor = Auditor::new(registry, extended_hospital_policy(), hospital_context());
//!
//! // Jane's treatment case replays cleanly; the HT-11 access does not.
//! let trail = figure4_trail();
//! assert!(auditor.check_one_case(&trail, sym("HT-1")).outcome.is_compliant());
//! assert!(auditor.check_one_case(&trail, sym("HT-11")).outcome.is_infringement());
//! ```

pub mod auditor;
pub mod checkpoint;
pub mod churn;
pub mod drift;
pub mod durable;
pub mod error;
pub mod lenient;
pub mod live;
pub mod metrics;
pub mod multitask;
pub mod naive;
pub mod parallel;
pub mod pool;
pub mod replay;
pub mod session;
pub mod severity;
pub mod sharded;
pub mod spill;
pub mod startup;
pub mod trie;

pub use auditor::{
    AuditReport, Auditor, CaseOutcome, CaseResult, InconclusiveReason, ProcessRegistry,
};
pub use checkpoint::{CaseCheckpoint, MonitorCheckpoint, RestoreError};
pub use churn::{decode_churn, encode_churn, ChurnCheckpoint, EntryBlock};
pub use drift::{allowed_successions, case_task_log, drift_report, DriftReport};
pub use durable::{atomic_write_sync, DurableFile, SyncPolicy};
pub use error::CheckError;
pub use lenient::{check_case_lenient, LenientCheck, LenientOptions};
pub use live::{ClosedCase, LiveAuditor, LiveConfig, LiveEvent, LiveStats};
pub use metrics::{record_case_metrics, register_audit_metrics};
pub use multitask::{multitasking_ratio, multitasking_report, MultitaskFinding};
pub use pool::{MonitorHandle, MonitorPool};
pub use replay::{
    check_case, check_case_traced, check_case_with, CaseCheck, CheckOptions, Configuration, Engine,
    FailPoints, Infringement, InfringementKind, Verdict,
};
pub use session::{FeedOutcome, ReplaySession, SessionMeta, SessionState};
pub use severity::{assess, SensitivityModel, SeverityAssessment};
pub use sharded::{shard_of, ShardedMonitor};
pub use startup::StartupStats;
pub use trie::{ReplayTrie, TrieStats};
