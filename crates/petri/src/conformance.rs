//! Token-replay conformance checking (Rozinat & van der Aalst \[13\]).
//!
//! The baseline quantifies the "fit" between a task-level log and a Petri
//! net by replaying the log: each event fires a transition with the
//! matching activity label, conjuring missing tokens when the transition is
//! not enabled; invisible (τ) transitions are fired on demand to enable the
//! next event. Fitness is
//!
//! ```text
//! f = ½ (1 − missing/consumed) + ½ (1 − remaining/produced)
//! ```
//!
//! §6's critique, reproduced by the tests: the technique (a) only sees
//! activity labels — a task executed by the *wrong role* replays with
//! perfect fitness; (b) produces a degree of fit rather than the exact
//! verdict Theorem 2 gives; (c) only applies to the translatable BPMN
//! fragment (no OR gateways).

use crate::net::{Marking, PetriNet, TransitionId};
use cows::symbol::Symbol;
use std::collections::{HashSet, VecDeque};

/// Counters of a token replay, in the terminology of \[13\].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Replay {
    pub produced: u32,
    pub consumed: u32,
    pub missing: u32,
    pub remaining: u32,
    /// Events whose label exists nowhere in the net.
    pub unmatched_events: u32,
}

impl Replay {
    /// The fitness measure `f ∈ [0, 1]`.
    pub fn fitness(&self) -> f64 {
        let m = if self.consumed == 0 {
            0.0
        } else {
            f64::from(self.missing) / f64::from(self.consumed)
        };
        let r = if self.produced == 0 {
            0.0
        } else {
            f64::from(self.remaining) / f64::from(self.produced)
        };
        0.5 * (1.0 - m) + 0.5 * (1.0 - r)
    }

    pub fn is_perfect(&self) -> bool {
        self.missing == 0 && self.remaining == 0 && self.unmatched_events == 0
    }
}

/// Options for the replay.
#[derive(Clone, Copy, Debug)]
pub struct ReplayOptions {
    /// Bound on the τ-closure search used to enable each event.
    pub max_tau_search: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            max_tau_search: 10_000,
        }
    }
}

/// Replay a task-level log (sequence of activity labels) on the net.
pub fn token_replay(net: &PetriNet, log: &[Symbol], opts: &ReplayOptions) -> Replay {
    let mut replay = Replay::default();
    let mut marking = net.initial_marking();
    // The initial marking counts as produced; the final marking's leftover
    // tokens count as remaining (minus the one "proper completion" token,
    // which our end places legitimately hold — we subtract end-place tokens
    // in `finish`).
    replay.produced += marking.total();

    for &task in log {
        let candidates = net.labeled(task);
        if candidates.is_empty() {
            replay.unmatched_events += 1;
            continue;
        }
        // Try to enable one of the candidates through τ moves.
        match enable_via_tau(net, &marking, &candidates, opts) {
            Some((m, fired_taus, t)) => {
                for tau in fired_taus {
                    account_fire(net, &mut replay, tau);
                }
                marking = m;
                account_fire(net, &mut replay, t);
                marking = net
                    .fire(&marking, t)
                    .expect("enable_via_tau returned an enabled transition");
            }
            None => {
                // Force-fire the first candidate, conjuring missing tokens.
                let t = candidates[0];
                let (m, missing) = net.force_fire(&marking, t);
                let tr = net.transition(t);
                replay.consumed += tr.inputs.len() as u32;
                replay.produced += tr.outputs.len() as u32;
                replay.missing += missing;
                marking = m;
            }
        }
    }

    // Completion phase: drain the net through invisible transitions toward
    // the final marking (the replay of [13] fires invisible tasks to reach
    // proper completion), then count leftover tokens outside terminal
    // (end_*) places as remaining.
    let (final_marking, taus) = drain_via_tau(net, &marking, opts);
    for t in taus {
        account_fire(net, &mut replay, t);
    }
    for p in 0..net.place_count() {
        let tokens = final_marking.tokens(crate::net::PlaceId(p));
        if tokens > 0
            && !net
                .place_name(crate::net::PlaceId(p))
                .as_str()
                .starts_with("end_")
        {
            replay.remaining += tokens;
        }
    }
    replay
}

/// Fire invisible transitions to reach the marking with the fewest tokens
/// outside terminal places (bounded BFS).
fn drain_via_tau(
    net: &PetriNet,
    from: &Marking,
    opts: &ReplayOptions,
) -> (Marking, Vec<TransitionId>) {
    let residue = |m: &Marking| -> u32 {
        (0..net.place_count())
            .map(crate::net::PlaceId)
            .filter(|&p| !net.place_name(p).as_str().starts_with("end_"))
            .map(|p| m.tokens(p))
            .sum()
    };
    let mut best = (from.clone(), Vec::new());
    let mut best_residue = residue(from);
    let mut queue: VecDeque<(Marking, Vec<TransitionId>)> = VecDeque::new();
    let mut seen: HashSet<Marking> = HashSet::new();
    queue.push_back((from.clone(), Vec::new()));
    seen.insert(from.clone());
    while let Some((m, path)) = queue.pop_front() {
        if seen.len() > opts.max_tau_search {
            break;
        }
        for t in net.enabled_transitions(&m) {
            if net.transition(t).is_visible() {
                continue;
            }
            let next = net.fire(&m, t).expect("enabled");
            if seen.insert(next.clone()) {
                let mut p = path.clone();
                p.push(t);
                let r = residue(&next);
                if r < best_residue {
                    best_residue = r;
                    best = (next.clone(), p.clone());
                }
                queue.push_back((next, p));
            }
        }
    }
    best
}

fn account_fire(net: &PetriNet, replay: &mut Replay, t: TransitionId) {
    let tr = net.transition(t);
    replay.consumed += tr.inputs.len() as u32;
    replay.produced += tr.outputs.len() as u32;
}

/// Search a τ-only firing sequence after which one of `candidates` is
/// enabled. Returns the pre-firing marking, the τ sequence and the enabled
/// candidate.
fn enable_via_tau(
    net: &PetriNet,
    from: &Marking,
    candidates: &[TransitionId],
    opts: &ReplayOptions,
) -> Option<(Marking, Vec<TransitionId>, TransitionId)> {
    let mut queue: VecDeque<(Marking, Vec<TransitionId>)> = VecDeque::new();
    let mut seen: HashSet<Marking> = HashSet::new();
    queue.push_back((from.clone(), Vec::new()));
    seen.insert(from.clone());
    while let Some((m, path)) = queue.pop_front() {
        for &c in candidates {
            if net.enabled(&m, c) {
                return Some((m, path, c));
            }
        }
        if seen.len() > opts.max_tau_search {
            return None;
        }
        for t in net.enabled_transitions(&m) {
            if net.transition(t).is_visible() {
                continue;
            }
            let next = net.fire(&m, t).expect("enabled");
            if seen.insert(next.clone()) {
                let mut p = path.clone();
                p.push(t);
                queue.push_back((next, p));
            }
        }
    }
    None
}

/// Collapse a per-case audit projection to the task-level log conformance
/// checking expects: consecutive same-task successes merge, failures map to
/// the `Err` activity. Exactly the §6 observation that process-mining logs
/// "only refer to activities specified in the business process model" —
/// users, roles, objects and consent are all erased.
pub fn task_log(entries: &[&audit::entry::LogEntry]) -> Vec<Symbol> {
    let mut out: Vec<Symbol> = Vec::new();
    let mut last: Option<(Symbol, audit::entry::TaskStatus)> = None;
    for e in entries {
        let sym = match e.status {
            audit::entry::TaskStatus::Success => e.task,
            audit::entry::TaskStatus::Failure => cows::sym("Err"),
        };
        if last != Some((e.task, e.status)) || e.status == audit::entry::TaskStatus::Failure {
            out.push(sym);
        }
        last = Some((e.task, e.status));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use bpmn::models::{fig8_exclusive, fig9_error};
    use cows::sym;

    fn replay_tasks(model: &bpmn::ProcessModel, tasks: &[&str]) -> Replay {
        let net = translate(model).unwrap();
        let log: Vec<Symbol> = tasks.iter().map(|t| sym(t)).collect();
        token_replay(&net, &log, &ReplayOptions::default())
    }

    #[test]
    fn valid_run_has_perfect_fitness() {
        let r = replay_tasks(&fig8_exclusive(), &["T", "T1"]);
        assert!(r.is_perfect(), "{r:?}");
        assert_eq!(r.fitness(), 1.0);
    }

    #[test]
    fn skipping_the_first_task_costs_fitness() {
        let r = replay_tasks(&fig8_exclusive(), &["T1"]);
        assert!(!r.is_perfect());
        assert!(r.fitness() < 1.0);
        assert!(r.missing > 0);
    }

    #[test]
    fn running_both_exclusive_branches_costs_fitness() {
        let r = replay_tasks(&fig8_exclusive(), &["T", "T1", "T2"]);
        assert!(!r.is_perfect());
        assert!(r.fitness() < 1.0);
    }

    #[test]
    fn error_path_replays() {
        let r = replay_tasks(&fig9_error(), &["T", "Err", "T1"]);
        assert!(r.is_perfect(), "{r:?}");
    }

    #[test]
    fn unknown_activity_counts_unmatched() {
        let r = replay_tasks(&fig8_exclusive(), &["T", "T99"]);
        assert_eq!(r.unmatched_events, 1);
        assert!(!r.is_perfect());
    }

    #[test]
    fn fitness_degrades_gracefully_not_binary() {
        // §6: conformance checking "quantifies the fit" — a mostly-valid
        // trail scores high even though it is an infringement.
        let mostly_ok = replay_tasks(&fig8_exclusive(), &["T", "T1", "T2"]);
        let all_wrong = replay_tasks(&fig8_exclusive(), &["T2", "T2", "T2"]);
        assert!(mostly_ok.fitness() > all_wrong.fitness());
        assert!(mostly_ok.fitness() > 0.6);
    }
}
