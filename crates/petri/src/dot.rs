//! Graphviz (DOT) export of Petri nets.
//!
//! Renders places as circles (token counts shown), visible transitions as
//! labeled boxes and invisible ones as slim black bars — the standard
//! visual vocabulary of the process-mining literature the `discover` and
//! `conformance` modules come from.

use crate::net::{Marking, PetriNet, PlaceId};
use std::fmt::Write;

/// Render the net (with `marking`, typically the initial one) as DOT.
pub fn to_dot(net: &PetriNet, marking: &Marking) -> String {
    let mut out = String::new();
    out.push_str("digraph petri {\n  rankdir=LR;\n");
    for p in 0..net.place_count() {
        let id = PlaceId(p);
        let tokens = marking.tokens(id);
        let label = if tokens > 0 {
            format!("{} ({tokens})", net.place_name(id))
        } else {
            net.place_name(id).to_string()
        };
        let _ = writeln!(out, "  p{p} [shape=circle, label=\"{label}\", fontsize=9];");
    }
    for (tid, t) in net.transitions() {
        match t.label {
            Some(task) => {
                let _ = writeln!(out, "  t{} [shape=box, label=\"{task}\"];", tid.0);
            }
            None => {
                let _ = writeln!(
                    out,
                    "  t{} [shape=box, style=filled, fillcolor=black, label=\"\", width=0.08];",
                    tid.0
                );
            }
        }
        for p in &t.inputs {
            let _ = writeln!(out, "  p{} -> t{};", p.0, tid.0);
        }
        for p in &t.outputs {
            let _ = writeln!(out, "  t{} -> p{};", tid.0, p.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover::{alpha_miner, DiscoverLimits};
    use crate::translate::translate;
    use bpmn::models::fig8_exclusive;
    use cows::sym;

    #[test]
    fn translated_net_renders() {
        let net = translate(&fig8_exclusive()).unwrap();
        let dot = to_dot(&net, &net.initial_marking());
        assert!(dot.starts_with("digraph petri {"));
        assert!(dot.contains("label=\"T1\""));
        assert!(dot.contains("fillcolor=black")); // τ transitions
        assert!(dot.contains("(1)")); // the marked start place
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn discovered_net_renders() {
        let log = vec![vec![sym("A"), sym("B")], vec![sym("A"), sym("C")]];
        let d = alpha_miner(&log, &DiscoverLimits::default());
        let dot = to_dot(&d.net, &d.net.initial_marking());
        assert!(dot.contains("label=\"A\""));
        assert!(dot.contains("source"));
    }
}
