//! Place/transition nets.
//!
//! The substrate of the process-mining conformance baseline the paper
//! compares against in §6 (Rozinat & van der Aalst \[13\]). Transitions are
//! either *visible* (labeled with a task name, the activity label of
//! process mining) or *invisible* (τ — routing introduced by translation).

use cows::symbol::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a place.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PlaceId(pub usize);

/// Index of a transition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TransitionId(pub usize);

/// A transition with its pre- and post-sets.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Transition {
    pub name: Symbol,
    /// Task label; `None` for invisible routing transitions.
    pub label: Option<Symbol>,
    pub inputs: Vec<PlaceId>,
    pub outputs: Vec<PlaceId>,
}

impl Transition {
    pub fn is_visible(&self) -> bool {
        self.label.is_some()
    }
}

/// A place/transition net with an initial marking.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PetriNet {
    place_names: Vec<Symbol>,
    transitions: Vec<Transition>,
    initial: Vec<u32>,
}

/// A marking: token count per place.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Marking(pub Vec<u32>);

impl Marking {
    pub fn tokens(&self, p: PlaceId) -> u32 {
        self.0[p.0]
    }

    pub fn total(&self) -> u32 {
        self.0.iter().sum()
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, n) in self.0.iter().enumerate() {
            if *n > 0 {
                write!(f, " p{i}:{n}")?;
            }
        }
        write!(f, " ]")
    }
}

impl PetriNet {
    pub fn new() -> PetriNet {
        PetriNet::default()
    }

    pub fn add_place(&mut self, name: impl Into<Symbol>, initial_tokens: u32) -> PlaceId {
        let id = PlaceId(self.place_names.len());
        self.place_names.push(name.into());
        self.initial.push(initial_tokens);
        id
    }

    pub fn add_transition(
        &mut self,
        name: impl Into<Symbol>,
        label: Option<Symbol>,
        inputs: Vec<PlaceId>,
        outputs: Vec<PlaceId>,
    ) -> TransitionId {
        let id = TransitionId(self.transitions.len());
        self.transitions.push(Transition {
            name: name.into(),
            label,
            inputs,
            outputs,
        });
        id
    }

    pub fn place_count(&self) -> usize {
        self.place_names.len()
    }

    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    pub fn place_name(&self, p: PlaceId) -> Symbol {
        self.place_names[p.0]
    }

    pub fn transition(&self, t: TransitionId) -> &Transition {
        &self.transitions[t.0]
    }

    pub fn transitions(&self) -> impl Iterator<Item = (TransitionId, &Transition)> {
        self.transitions
            .iter()
            .enumerate()
            .map(|(i, t)| (TransitionId(i), t))
    }

    pub fn initial_marking(&self) -> Marking {
        Marking(self.initial.clone())
    }

    /// Whether `t` is enabled under `m`.
    pub fn enabled(&self, m: &Marking, t: TransitionId) -> bool {
        self.transitions[t.0].inputs.iter().all(|p| m.0[p.0] > 0)
    }

    /// Fire `t`, consuming and producing tokens. Returns `None` if not
    /// enabled.
    pub fn fire(&self, m: &Marking, t: TransitionId) -> Option<Marking> {
        if !self.enabled(m, t) {
            return None;
        }
        let mut next = m.clone();
        for p in &self.transitions[t.0].inputs {
            next.0[p.0] -= 1;
        }
        for p in &self.transitions[t.0].outputs {
            next.0[p.0] += 1;
        }
        Some(next)
    }

    /// Fire `t` in forced mode: missing input tokens are conjured (and
    /// counted) — the token-replay repair of \[13\].
    pub fn force_fire(&self, m: &Marking, t: TransitionId) -> (Marking, u32) {
        let mut next = m.clone();
        let mut missing = 0;
        for p in &self.transitions[t.0].inputs {
            if next.0[p.0] == 0 {
                missing += 1;
            } else {
                next.0[p.0] -= 1;
            }
        }
        for p in &self.transitions[t.0].outputs {
            next.0[p.0] += 1;
        }
        (next, missing)
    }

    /// All enabled transitions under `m`.
    pub fn enabled_transitions(&self, m: &Marking) -> Vec<TransitionId> {
        (0..self.transitions.len())
            .map(TransitionId)
            .filter(|&t| self.enabled(m, t))
            .collect()
    }

    /// Visible transitions labeled `task`.
    pub fn labeled(&self, task: Symbol) -> Vec<TransitionId> {
        self.transitions()
            .filter(|(_, t)| t.label == Some(task))
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    /// p0 → [a] → p1 → [τ] → p2
    fn chain() -> (PetriNet, TransitionId, TransitionId) {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0", 1);
        let p1 = net.add_place("p1", 0);
        let p2 = net.add_place("p2", 0);
        let a = net.add_transition("a", Some(sym("A")), vec![p0], vec![p1]);
        let tau = net.add_transition("tau", None, vec![p1], vec![p2]);
        (net, a, tau)
    }

    #[test]
    fn firing_moves_tokens() {
        let (net, a, tau) = chain();
        let m0 = net.initial_marking();
        assert!(net.enabled(&m0, a));
        assert!(!net.enabled(&m0, tau));
        let m1 = net.fire(&m0, a).unwrap();
        assert_eq!(m1.tokens(PlaceId(0)), 0);
        assert_eq!(m1.tokens(PlaceId(1)), 1);
        let m2 = net.fire(&m1, tau).unwrap();
        assert_eq!(m2.tokens(PlaceId(2)), 1);
        assert!(net.fire(&m2, a).is_none());
    }

    #[test]
    fn force_fire_counts_missing() {
        let (net, _, tau) = chain();
        let m0 = net.initial_marking();
        let (m, missing) = net.force_fire(&m0, tau);
        assert_eq!(missing, 1);
        assert_eq!(m.tokens(PlaceId(2)), 1);
    }

    #[test]
    fn labeled_lookup() {
        let (net, a, _) = chain();
        assert_eq!(net.labeled(sym("A")), vec![a]);
        assert!(net.labeled(sym("B")).is_empty());
    }

    #[test]
    fn synchronizing_join_requires_all_inputs() {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0", 1);
        let p1 = net.add_place("p1", 0);
        let out = net.add_place("out", 0);
        let join = net.add_transition("join", None, vec![p0, p1], vec![out]);
        let m = net.initial_marking();
        assert!(!net.enabled(&m, join));
    }
}
