//! # Petri nets and token-replay conformance checking
//!
//! The process-mining baseline the paper compares against in §6 (Rozinat &
//! van der Aalst, "Conformance checking of processes based on monitoring
//! real behavior" \[13\]), built from scratch:
//!
//! * [`net`] — place/transition nets with visible (task-labeled) and
//!   invisible (τ) transitions;
//! * [`translate`] — a BPMN → Petri translation for the fragment such
//!   tooling supports; inclusive (OR) gateways are rejected, faithfully
//!   reproducing the restriction §6 points out (the paper's Fig. 1 process
//!   cannot be translated);
//! * [`conformance`] — token replay with the \[13\] fitness measure, plus the
//!   task-level log collapse that erases users, roles and objects — the
//!   information loss that makes this baseline blind to the paper's
//!   fine-grained violations.

pub mod conformance;
pub mod discover;
pub mod dot;
pub mod net;
pub mod translate;

pub use conformance::{task_log, token_replay, Replay, ReplayOptions};
pub use discover::{alpha_miner, DiscoverLimits, Discovery, LogRelations};
pub use net::{Marking, PetriNet, PlaceId, Transition, TransitionId};
pub use translate::{translate, TranslateError};
