//! Process discovery: the α-algorithm (van der Aalst, Weijters & Maruster,
//! "Workflow Mining: Discovering Process Models from Event Logs" — the
//! paper's reference \[33\]).
//!
//! The paper contrasts its *top-down* purpose control (replay against the
//! prescribed process) with the *bottom-up* process-mining tradition
//! (discover what people actually do). Implementing the classic miner
//! closes that loop: discover a net from the audit trail's task logs and
//! token-replay the prescribed behavior against it — a drift detector
//! complementary to Algorithm 1.
//!
//! Given a log `L` of task traces, the α-algorithm derives:
//!
//! * direct succession `a > b` — `ab` occurs consecutively in some trace;
//! * causality `a → b` — `a > b` and not `b > a`;
//! * parallelism `a ∥ b` — `a > b` and `b > a`;
//! * independence `a # b` — neither;
//!
//! then builds one place per maximal pair `(A, B)` with `A → B` pointwise
//! and `#` within each side, plus source and sink places.

use crate::net::{PetriNet, PlaceId};
use cows::symbol::Symbol;
use std::collections::{BTreeSet, HashMap};

/// The ordering relations the α-algorithm extracts from a log.
#[derive(Clone, Debug, Default)]
pub struct LogRelations {
    pub tasks: BTreeSet<Symbol>,
    pub first_tasks: BTreeSet<Symbol>,
    pub last_tasks: BTreeSet<Symbol>,
    succ: BTreeSet<(Symbol, Symbol)>,
}

impl LogRelations {
    /// Extract relations from `log` (one task sequence per case).
    pub fn from_log(log: &[Vec<Symbol>]) -> LogRelations {
        let mut r = LogRelations::default();
        for trace in log {
            if trace.is_empty() {
                continue;
            }
            r.first_tasks.insert(trace[0]);
            r.last_tasks.insert(trace[trace.len() - 1]);
            for t in trace {
                r.tasks.insert(*t);
            }
            for w in trace.windows(2) {
                r.succ.insert((w[0], w[1]));
            }
        }
        r
    }

    pub fn directly_follows(&self, a: Symbol, b: Symbol) -> bool {
        self.succ.contains(&(a, b))
    }

    /// `a → b`.
    pub fn causal(&self, a: Symbol, b: Symbol) -> bool {
        self.directly_follows(a, b) && !self.directly_follows(b, a)
    }

    /// `a ∥ b`.
    pub fn parallel(&self, a: Symbol, b: Symbol) -> bool {
        self.directly_follows(a, b) && self.directly_follows(b, a)
    }

    /// `a # b`.
    pub fn independent(&self, a: Symbol, b: Symbol) -> bool {
        !self.directly_follows(a, b) && !self.directly_follows(b, a)
    }
}

/// Limits for the place search. `(A, B)` candidates are enumerated over
/// subsets; the side size is capped (the classic algorithm is exponential
/// in it; real task alphabets rarely need more than a handful).
#[derive(Clone, Copy, Debug)]
pub struct DiscoverLimits {
    pub max_side: usize,
}

impl Default for DiscoverLimits {
    fn default() -> Self {
        DiscoverLimits { max_side: 4 }
    }
}

/// A discovered net plus its diagnostic relations.
#[derive(Clone, Debug)]
pub struct Discovery {
    pub net: PetriNet,
    pub relations: LogRelations,
    /// The maximal `(A, B)` pairs realized as places.
    pub places: Vec<(BTreeSet<Symbol>, BTreeSet<Symbol>)>,
}

/// Run the α-algorithm on a task log.
pub fn alpha_miner(log: &[Vec<Symbol>], limits: &DiscoverLimits) -> Discovery {
    let relations = LogRelations::from_log(log);
    let tasks: Vec<Symbol> = relations.tasks.iter().copied().collect();

    // Candidate sides: subsets of tasks that are pairwise independent.
    // Seeds are single tasks; grow breadth-first up to the cap.
    let independent_sets = independent_subsets(&relations, &tasks, limits.max_side);

    // X_L: (A, B) with a → b for every a ∈ A, b ∈ B.
    let mut x: Vec<(BTreeSet<Symbol>, BTreeSet<Symbol>)> = Vec::new();
    for a_set in &independent_sets {
        for b_set in &independent_sets {
            let all_causal = a_set
                .iter()
                .all(|&a| b_set.iter().all(|&b| relations.causal(a, b)));
            if all_causal {
                x.push((a_set.clone(), b_set.clone()));
            }
        }
    }

    // Y_L: maximal elements of X_L under componentwise inclusion.
    let mut places: Vec<(BTreeSet<Symbol>, BTreeSet<Symbol>)> = Vec::new();
    'outer: for (i, (a, b)) in x.iter().enumerate() {
        for (j, (a2, b2)) in x.iter().enumerate() {
            if i != j && a.is_subset(a2) && b.is_subset(b2) && (a != a2 || b != b2) {
                continue 'outer;
            }
        }
        if !places.contains(&(a.clone(), b.clone())) {
            places.push((a.clone(), b.clone()));
        }
    }
    places.sort();

    // Assemble the net.
    let mut net = PetriNet::new();
    let source = net.add_place("source", 1);
    let sink = net.add_place("end_sink", 0);
    let mut pre: HashMap<Symbol, Vec<PlaceId>> = HashMap::new();
    let mut post: HashMap<Symbol, Vec<PlaceId>> = HashMap::new();

    for &t in &tasks {
        if relations.first_tasks.contains(&t) {
            pre.entry(t).or_default().push(source);
        }
        if relations.last_tasks.contains(&t) {
            post.entry(t).or_default().push(sink);
        }
    }
    for (idx, (a, b)) in places.iter().enumerate() {
        let p = net.add_place(format!("p{idx}").as_str(), 0);
        for &t in a {
            post.entry(t).or_default().push(p);
        }
        for &t in b {
            pre.entry(t).or_default().push(p);
        }
    }
    for &t in &tasks {
        net.add_transition(
            t.as_str(),
            Some(t),
            pre.remove(&t).unwrap_or_default(),
            post.remove(&t).unwrap_or_default(),
        );
    }

    Discovery {
        net,
        relations,
        places,
    }
}

/// All nonempty subsets of `tasks` (size ≤ `max_side`) that are pairwise
/// independent (`#`).
fn independent_subsets(
    relations: &LogRelations,
    tasks: &[Symbol],
    max_side: usize,
) -> Vec<BTreeSet<Symbol>> {
    let mut out: Vec<BTreeSet<Symbol>> = tasks.iter().map(|&t| BTreeSet::from([t])).collect();
    let mut frontier = out.clone();
    for _ in 1..max_side {
        let mut next: Vec<BTreeSet<Symbol>> = Vec::new();
        for set in &frontier {
            let anchor = *set.iter().next_back().expect("nonempty");
            for &t in tasks {
                if t <= anchor || set.contains(&t) {
                    continue;
                }
                if set.iter().all(|&s| relations.independent(s, t)) {
                    let mut grown = set.clone();
                    grown.insert(t);
                    next.push(grown);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::{token_replay, ReplayOptions};
    use cows::sym;

    fn trace(tasks: &[&str]) -> Vec<Symbol> {
        tasks.iter().map(|t| sym(t)).collect()
    }

    #[test]
    fn relations_from_sequence() {
        let log = vec![trace(&["A", "B", "C"])];
        let r = LogRelations::from_log(&log);
        assert!(r.causal(sym("A"), sym("B")));
        assert!(r.causal(sym("B"), sym("C")));
        assert!(!r.causal(sym("A"), sym("C")));
        assert!(r.independent(sym("A"), sym("C")));
        assert_eq!(r.first_tasks, BTreeSet::from([sym("A")]));
        assert_eq!(r.last_tasks, BTreeSet::from([sym("C")]));
    }

    #[test]
    fn parallel_detected() {
        let log = vec![trace(&["A", "B", "C", "D"]), trace(&["A", "C", "B", "D"])];
        let r = LogRelations::from_log(&log);
        assert!(r.parallel(sym("B"), sym("C")));
        assert!(r.causal(sym("A"), sym("B")));
    }

    #[test]
    fn discovers_a_sequence() {
        let log = vec![trace(&["A", "B", "C"]); 3];
        let d = alpha_miner(&log, &DiscoverLimits::default());
        // Two internal places (A→B, B→C) plus source and sink.
        assert_eq!(d.places.len(), 2);
        assert_eq!(d.net.place_count(), 4);
        // The log itself replays perfectly on the discovered net.
        let replay = token_replay(&d.net, &log[0], &ReplayOptions::default());
        assert!(replay.is_perfect(), "{replay:?}");
    }

    #[test]
    fn discovers_an_exclusive_choice() {
        let log = vec![trace(&["A", "B", "D"]), trace(&["A", "C", "D"])];
        let d = alpha_miner(&log, &DiscoverLimits::default());
        // One place A→{B,C} and one {B,C}→D: the XOR diamond.
        assert!(d
            .places
            .iter()
            .any(|(a, b)| a == &BTreeSet::from([sym("A")])
                && b == &BTreeSet::from([sym("B"), sym("C")])));
        for t in [&log[0], &log[1]] {
            assert!(token_replay(&d.net, t, &ReplayOptions::default()).is_perfect());
        }
        // A trace running BOTH branches does not fit the discovered net.
        let both = trace(&["A", "B", "C", "D"]);
        assert!(!token_replay(&d.net, &both, &ReplayOptions::default()).is_perfect());
    }

    #[test]
    fn discovers_parallelism_without_false_places() {
        let log = vec![trace(&["A", "B", "C", "D"]), trace(&["A", "C", "B", "D"])];
        let d = alpha_miner(&log, &DiscoverLimits::default());
        // B ∥ C: no place between them; both orders replay.
        for t in [&log[0], &log[1]] {
            let r = token_replay(&d.net, t, &ReplayOptions::default());
            assert!(r.is_perfect(), "{t:?}: {r:?}");
        }
        // Skipping one parallel branch leaves a token behind.
        let skip = trace(&["A", "B", "D"]);
        assert!(!token_replay(&d.net, &skip, &ReplayOptions::default()).is_perfect());
    }

    #[test]
    fn discovered_net_flags_prescribed_process_drift() {
        // The compliance-drift scenario: people systematically skip B.
        // Mining the *actual* behavior yields a net on which the
        // *prescribed* trace no longer fits.
        let actual = vec![trace(&["A", "C"]); 5];
        let d = alpha_miner(&actual, &DiscoverLimits::default());
        let prescribed = trace(&["A", "B", "C"]);
        let r = token_replay(&d.net, &prescribed, &ReplayOptions::default());
        assert!(!r.is_perfect(), "drift must be visible: {r:?}");
    }

    #[test]
    fn empty_log_discovers_empty_net() {
        let d = alpha_miner(&[], &DiscoverLimits::default());
        assert_eq!(d.net.transition_count(), 0);
        assert_eq!(d.places.len(), 0);
    }
}
