//! BPMN → Petri net translation.
//!
//! The translation covers the fragment Petri-net-based conformance tooling
//! supports; §6 of the paper: "existing solutions based on Petri Nets
//! either impose some restrictions on the syntax of BPMN … or define a
//! formal semantics that deviate from the informal one". We take the first
//! horn and reproduce the restriction faithfully: **inclusive (OR)
//! gateways are rejected**, so the paper's Fig. 1 process is exactly the
//! kind of model this baseline cannot analyze (test
//! `fig1_rejected_by_translation`).
//!
//! Mapping (one place per sequence flow, plus a busy place per task):
//!
//! * start event → marked place + τ;
//! * task `T` → visible transition `T` into `busy_T`, then a τ completion;
//!   an error boundary adds a visible `Err`-labeled transition out of
//!   `busy_T`;
//! * XOR gateway → one τ per routing alternative;
//! * AND gateway → a single synchronizing τ;
//! * message flows → an inbox place per message-receiving node;
//! * end events → τ into a terminal place.

use crate::net::{PetriNet, PlaceId};
use bpmn::model::{NodeId, NodeKind, ProcessModel};
use cows::symbol::{sym, Symbol};
use std::collections::HashMap;
use std::fmt;

/// Why a model cannot be translated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The model uses inclusive (OR) gateways — outside the supported
    /// fragment, as in the Petri-net conformance literature.
    InclusiveGateway { node: Symbol },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::InclusiveGateway { node } => write!(
                f,
                "node `{node}`: inclusive (OR) gateways are not expressible in the \
                 Petri-net fragment used by token-replay conformance checking"
            ),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translate `model` into a Petri net whose visible transitions are the
/// model's tasks (activity labels) plus `Err` for error boundaries.
pub fn translate(model: &ProcessModel) -> Result<PetriNet, TranslateError> {
    for n in model.nodes() {
        if matches!(n.kind, NodeKind::Or { .. } | NodeKind::OrJoin) {
            return Err(TranslateError::InclusiveGateway { node: n.name });
        }
    }

    let mut net = PetriNet::new();
    // One place per sequence flow.
    let mut flow_place: HashMap<(NodeId, NodeId), PlaceId> = HashMap::new();
    for f in model.flows() {
        let name = format!("f_{}_{}", model.node(f.from).name, model.node(f.to).name);
        flow_place.insert((f.from, f.to), net.add_place(name.as_str(), 0));
    }
    // One inbox place per message-receiving node.
    let mut inbox: HashMap<NodeId, PlaceId> = HashMap::new();
    for n in model.nodes() {
        if let NodeKind::MessageEnd { to } = n.kind {
            inbox.entry(to).or_insert_with(|| {
                net.add_place(format!("inbox_{}", model.node(to).name).as_str(), 0)
            });
        }
    }
    // A synthetic input place for error handlers reachable only through a
    // boundary event (they have no incoming sequence flow of their own).
    let mut err_input: HashMap<NodeId, PlaceId> = HashMap::new();
    for n in model.nodes() {
        if let NodeKind::Task {
            on_error: Some(handler),
        } = n.kind
        {
            if model.predecessors(handler).is_empty() {
                err_input.entry(handler).or_insert_with(|| {
                    net.add_place(format!("errin_{}", model.node(handler).name).as_str(), 0)
                });
            }
        }
    }

    let in_places = |model: &ProcessModel,
                     flow_place: &HashMap<(NodeId, NodeId), PlaceId>,
                     id: NodeId|
     -> Vec<PlaceId> {
        model
            .predecessors(id)
            .into_iter()
            .map(|p| flow_place[&(p, id)])
            .collect()
    };
    let out_places = |model: &ProcessModel,
                      flow_place: &HashMap<(NodeId, NodeId), PlaceId>,
                      id: NodeId|
     -> Vec<PlaceId> {
        model
            .successors(id)
            .into_iter()
            .map(|s| flow_place[&(id, s)])
            .collect()
    };

    for n in model.nodes() {
        let name = n.name;
        match n.kind {
            NodeKind::Start => {
                let p = net.add_place(format!("start_{name}").as_str(), 1);
                net.add_transition(
                    format!("t_{name}").as_str(),
                    None,
                    vec![p],
                    out_places(model, &flow_place, n.id),
                );
            }
            NodeKind::MessageStart => {
                // Consumes one message from the inbox per activation.
                let p = *inbox
                    .entry(n.id)
                    .or_insert_with(|| net.add_place(format!("inbox_{name}").as_str(), 0));
                net.add_transition(
                    format!("t_{name}").as_str(),
                    None,
                    vec![p],
                    out_places(model, &flow_place, n.id),
                );
            }
            NodeKind::End => {
                let done = net.add_place(format!("end_{name}").as_str(), 0);
                for (i, p) in in_places(model, &flow_place, n.id).into_iter().enumerate() {
                    net.add_transition(format!("t_{name}_{i}").as_str(), None, vec![p], vec![done]);
                }
            }
            NodeKind::MessageEnd { to } => {
                let target = inbox[&to];
                for (i, p) in in_places(model, &flow_place, n.id).into_iter().enumerate() {
                    net.add_transition(
                        format!("t_{name}_{i}").as_str(),
                        None,
                        vec![p],
                        vec![target],
                    );
                }
            }
            NodeKind::Task { on_error } => {
                let busy = net.add_place(format!("busy_{name}").as_str(), 0);
                // Start: one visible transition per input place (XOR-join
                // semantics of multiple incoming flows; the synthetic
                // error-input place counts as one).
                let mut ins = in_places(model, &flow_place, n.id);
                if let Some(&p) = err_input.get(&n.id) {
                    ins.push(p);
                }
                for (i, p) in ins.into_iter().enumerate() {
                    net.add_transition(
                        format!("start_{name}_{i}").as_str(),
                        Some(name),
                        vec![p],
                        vec![busy],
                    );
                }
                // Completion.
                net.add_transition(
                    format!("done_{name}").as_str(),
                    None,
                    vec![busy],
                    out_places(model, &flow_place, n.id),
                );
                // Failure (visible, labeled Err as in the observable
                // alphabet of §3.5).
                if let Some(handler) = on_error {
                    let hin = match err_input.get(&handler) {
                        Some(&p) => p,
                        None => flow_place[&(model.predecessors(handler)[0], handler)],
                    };
                    net.add_transition(
                        format!("fail_{name}").as_str(),
                        Some(sym("Err")),
                        vec![busy],
                        vec![hin],
                    );
                }
            }
            NodeKind::Xor => {
                // One τ per (incoming, outgoing) routing alternative.
                let ins = in_places(model, &flow_place, n.id);
                let outs = out_places(model, &flow_place, n.id);
                for (i, &pin) in ins.iter().enumerate() {
                    for (j, &pout) in outs.iter().enumerate() {
                        net.add_transition(
                            format!("t_{name}_{i}_{j}").as_str(),
                            None,
                            vec![pin],
                            vec![pout],
                        );
                    }
                }
            }
            NodeKind::And => {
                net.add_transition(
                    format!("t_{name}").as_str(),
                    None,
                    in_places(model, &flow_place, n.id),
                    out_places(model, &flow_place, n.id),
                );
            }
            NodeKind::Or { .. } | NodeKind::OrJoin => unreachable!("rejected above"),
        }
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmn::models::{fig7_sequence, fig8_exclusive, fig9_error, healthcare_treatment};
    use cows::sym;

    #[test]
    fn fig7_translates() {
        let net = translate(&fig7_sequence()).unwrap();
        assert_eq!(net.labeled(sym("T")).len(), 1);
        // Start is enabled; T fires after its τ.
        let m0 = net.initial_marking();
        let enabled = net.enabled_transitions(&m0);
        assert_eq!(enabled.len(), 1);
    }

    #[test]
    fn fig8_xor_translates_with_two_branch_taus() {
        let net = translate(&fig8_exclusive()).unwrap();
        assert_eq!(net.labeled(sym("T1")).len(), 1);
        assert_eq!(net.labeled(sym("T2")).len(), 1);
    }

    #[test]
    fn fig9_error_has_visible_err() {
        let net = translate(&fig9_error()).unwrap();
        assert_eq!(net.labeled(sym("Err")).len(), 1);
    }

    #[test]
    fn fig1_rejected_by_translation() {
        // The paper's healthcare process uses an inclusive gateway (G3) —
        // outside the Petri-net fragment, reproducing the §6 restriction.
        let err = translate(&healthcare_treatment()).unwrap_err();
        let TranslateError::InclusiveGateway { node } = err;
        assert!(
            node == sym("G3") || node == sym("S4"),
            "expected the OR split or its join, got {node}"
        );
    }
}
