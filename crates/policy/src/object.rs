//! Objects and the object hierarchy.
//!
//! §3.1: resources use a directory-like notation with a partial order ≥O
//! reflecting the data structure, and "we make explicit the name of the data
//! subject when appropriate": `[Jane]EPR/Clinical` is the clinical section
//! of Jane's EPR, with `[Jane]EPR ≥O [Jane]EPR/Clinical`. `[·]EPR` denotes
//! EPRs regardless of the patient.

use cows::symbol::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A concrete object: an optional data subject plus a path.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ObjectId {
    pub subject: Option<Symbol>,
    pub path: Vec<Symbol>,
}

impl ObjectId {
    /// `[subject]a/b/c`.
    pub fn of_subject(subject: impl Into<Symbol>, path: &str) -> ObjectId {
        ObjectId {
            subject: Some(subject.into()),
            path: split_path(path),
        }
    }

    /// `a/b/c` without a data subject.
    pub fn plain(path: &str) -> ObjectId {
        ObjectId {
            subject: None,
            path: split_path(path),
        }
    }

    /// Whether `self ≥O other`: same subject and `self.path` is a prefix of
    /// `other.path`. An EPR dominates each of its sections.
    pub fn dominates(&self, other: &ObjectId) -> bool {
        self.subject == other.subject
            && other.path.len() >= self.path.len()
            && self.path.iter().zip(&other.path).all(|(a, b)| a == b)
    }
}

fn split_path(path: &str) -> Vec<Symbol> {
    path.split('/')
        .filter(|s| !s.is_empty())
        .map(Symbol::new)
        .collect()
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(s) = self.subject {
            write!(f, "[{s}]")?;
        }
        for (i, seg) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{seg}")?;
        }
        Ok(())
    }
}

/// Parse error for [`ObjectId`] / [`ObjectPattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectParseError {
    pub input: String,
    pub reason: &'static str,
}

impl fmt::Display for ObjectParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse object `{}`: {}", self.input, self.reason)
    }
}

impl std::error::Error for ObjectParseError {}

impl FromStr for ObjectId {
    type Err = ObjectParseError;

    /// Accepts `path/segments` and `[Subject]path/segments`.
    fn from_str(s: &str) -> Result<ObjectId, ObjectParseError> {
        let (subject, rest) = parse_subject_prefix(s)?;
        let subject = match subject {
            None => None,
            Some(name) => {
                if name == "*" || name == "." || name == "consent" {
                    return Err(ObjectParseError {
                        input: s.into(),
                        reason: "subject wildcards are only valid in patterns",
                    });
                }
                Some(Symbol::new(name))
            }
        };
        let path = split_path(rest);
        // Brackets are structural (they delimit the subject prefix): a
        // segment containing one would render to a string that re-parses
        // differently — e.g. `[a]b` as a first segment reads back as
        // subject `a`, path `b`. Reject instead of round-tripping wrong.
        if path.iter().any(|seg| seg.as_str().contains(['[', ']'])) {
            return Err(ObjectParseError {
                input: s.into(),
                reason: "brackets are reserved for the subject prefix",
            });
        }
        Ok(ObjectId { subject, path })
    }
}

fn parse_subject_prefix(s: &str) -> Result<(Option<&str>, &str), ObjectParseError> {
    if let Some(stripped) = s.strip_prefix('[') {
        match stripped.split_once(']') {
            Some((subject, rest)) => Ok((Some(subject), rest)),
            None => Err(ObjectParseError {
                input: s.into(),
                reason: "unterminated subject bracket",
            }),
        }
    } else {
        Ok((None, s))
    }
}

/// Which data subjects a policy statement covers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SubjectPattern {
    /// No data subject (plain resources such as `ClinicalTrial/Criteria`).
    None,
    /// `[·]` — any data subject (Fig. 3's `[·]EPR`).
    Any,
    /// `[X]` where X ranges over subjects who consented to the statement's
    /// purpose (Fig. 3's last statement).
    Consenting,
    /// A specific named subject.
    Named(Symbol),
}

/// An object pattern appearing in a policy statement.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ObjectPattern {
    pub subject: SubjectPattern,
    pub path: Vec<Symbol>,
}

impl ObjectPattern {
    pub fn any_subject(path: &str) -> ObjectPattern {
        ObjectPattern {
            subject: SubjectPattern::Any,
            path: split_path(path),
        }
    }

    pub fn consenting(path: &str) -> ObjectPattern {
        ObjectPattern {
            subject: SubjectPattern::Consenting,
            path: split_path(path),
        }
    }

    pub fn plain(path: &str) -> ObjectPattern {
        ObjectPattern {
            subject: SubjectPattern::None,
            path: split_path(path),
        }
    }

    pub fn named(subject: impl Into<Symbol>, path: &str) -> ObjectPattern {
        ObjectPattern {
            subject: SubjectPattern::Named(subject.into()),
            path: split_path(path),
        }
    }

    /// Whether the pattern's object dominates `o` (condition (iii) of
    /// Def. 3: `o' ≥O o`), given whether `o`'s subject consented to the
    /// statement purpose.
    pub fn covers(&self, o: &ObjectId, subject_consented: bool) -> bool {
        let subject_ok = match self.subject {
            SubjectPattern::None => o.subject.is_none(),
            SubjectPattern::Any => o.subject.is_some(),
            SubjectPattern::Consenting => o.subject.is_some() && subject_consented,
            SubjectPattern::Named(s) => o.subject == Some(s),
        };
        subject_ok
            && o.path.len() >= self.path.len()
            && self.path.iter().zip(&o.path).all(|(a, b)| a == b)
    }
}

impl fmt::Display for ObjectPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.subject {
            SubjectPattern::None => {}
            SubjectPattern::Any => write!(f, "[*]")?,
            SubjectPattern::Consenting => write!(f, "[consent]")?,
            SubjectPattern::Named(s) => write!(f, "[{s}]")?,
        }
        for (i, seg) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{seg}")?;
        }
        Ok(())
    }
}

impl FromStr for ObjectPattern {
    type Err = ObjectParseError;

    /// Accepts `path`, `[*]path`, `[.]path` (same as `[*]`), `[consent]path`
    /// and `[Name]path`.
    fn from_str(s: &str) -> Result<ObjectPattern, ObjectParseError> {
        let (subject, rest) = parse_subject_prefix(s)?;
        let subject = match subject {
            None => SubjectPattern::None,
            Some("*") | Some(".") => SubjectPattern::Any,
            Some("consent") => SubjectPattern::Consenting,
            Some(name) if !name.is_empty() => SubjectPattern::Named(Symbol::new(name)),
            Some(_) => {
                return Err(ObjectParseError {
                    input: s.into(),
                    reason: "empty subject bracket",
                })
            }
        };
        Ok(ObjectPattern {
            subject,
            path: split_path(rest),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    #[test]
    fn object_dominance() {
        let epr = ObjectId::of_subject("Jane", "EPR");
        let clinical = ObjectId::of_subject("Jane", "EPR/Clinical");
        let scan = ObjectId::of_subject("Jane", "EPR/Clinical/Scan");
        assert!(epr.dominates(&clinical));
        assert!(epr.dominates(&scan));
        assert!(clinical.dominates(&scan));
        assert!(!clinical.dominates(&epr));
        assert!(epr.dominates(&epr));
    }

    #[test]
    fn dominance_requires_same_subject() {
        let jane = ObjectId::of_subject("Jane", "EPR");
        let david = ObjectId::of_subject("David", "EPR/Clinical");
        assert!(!jane.dominates(&david));
    }

    #[test]
    fn display_round_trip() {
        let o = ObjectId::of_subject("Jane", "EPR/Clinical");
        assert_eq!(o.to_string(), "[Jane]EPR/Clinical");
        assert_eq!(o.to_string().parse::<ObjectId>().unwrap(), o);
        let p = ObjectId::plain("ClinicalTrial/Criteria");
        assert_eq!(p.to_string(), "ClinicalTrial/Criteria");
        assert_eq!(p.to_string().parse::<ObjectId>().unwrap(), p);
    }

    #[test]
    fn any_subject_pattern_covers_all_patients() {
        let pat = ObjectPattern::any_subject("EPR/Clinical");
        let jane = ObjectId::of_subject("Jane", "EPR/Clinical/Tests");
        let david = ObjectId::of_subject("David", "EPR/Clinical");
        assert!(pat.covers(&jane, false));
        assert!(pat.covers(&david, false));
        // But not subject-less objects, nor other sections.
        assert!(!pat.covers(&ObjectId::plain("EPR/Clinical"), false));
        assert!(!pat.covers(&ObjectId::of_subject("Jane", "EPR/Demographics"), false));
    }

    #[test]
    fn consenting_pattern_requires_consent() {
        let pat = ObjectPattern::consenting("EPR");
        let jane = ObjectId::of_subject("Jane", "EPR/Clinical");
        assert!(pat.covers(&jane, true));
        assert!(!pat.covers(&jane, false));
    }

    #[test]
    fn named_pattern() {
        let pat = ObjectPattern::named("Jane", "EPR");
        assert!(pat.covers(&ObjectId::of_subject("Jane", "EPR/Clinical"), false));
        assert!(!pat.covers(&ObjectId::of_subject("David", "EPR/Clinical"), false));
    }

    #[test]
    fn pattern_parsing() {
        assert_eq!(
            "[*]EPR/Clinical".parse::<ObjectPattern>().unwrap(),
            ObjectPattern::any_subject("EPR/Clinical")
        );
        assert_eq!(
            "[.]EPR".parse::<ObjectPattern>().unwrap(),
            ObjectPattern::any_subject("EPR")
        );
        assert_eq!(
            "[consent]EPR".parse::<ObjectPattern>().unwrap(),
            ObjectPattern::consenting("EPR")
        );
        assert_eq!(
            "[Jane]EPR".parse::<ObjectPattern>().unwrap(),
            ObjectPattern::named("Jane", "EPR")
        );
        assert_eq!(
            "ClinicalTrial".parse::<ObjectPattern>().unwrap(),
            ObjectPattern::plain("ClinicalTrial")
        );
        assert!("[Jane EPR".parse::<ObjectPattern>().is_err());
    }

    #[test]
    fn object_rejects_pattern_wildcards() {
        assert!("[*]EPR".parse::<ObjectId>().is_err());
        assert!("[consent]EPR".parse::<ObjectId>().is_err());
    }

    #[test]
    fn subject_symbol_accessible() {
        let o = ObjectId::of_subject("Jane", "EPR");
        assert_eq!(o.subject, Some(sym("Jane")));
    }
}
