//! A line-oriented text format for policies.
//!
//! The paper presents policies as tuples (Fig. 3); this module gives them a
//! concrete syntax so policies can live in files without pulling a
//! serialization-format dependency:
//!
//! ```text
//! # comments and blank lines are ignored
//! allow role:Physician read [*]EPR/Clinical for treatment
//! allow role:Physician write [*]EPR/Clinical for treatment
//! allow user:bob write ClinicalTrial/Criteria for clinicaltrial
//! allow role:Physician read [consent]EPR for clinicaltrial
//! ```

use crate::object::ObjectPattern;
use crate::statement::{Action, Policy, Statement, StatementSubject};
use cows::symbol::Symbol;
use std::fmt;

/// Parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyParseError {}

fn err(line: usize, message: impl Into<String>) -> PolicyParseError {
    PolicyParseError {
        line,
        message: message.into(),
    }
}

/// Parse a policy document.
pub fn parse_policy(text: &str) -> Result<Policy, PolicyParseError> {
    let mut policy = Policy::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        policy.add(parse_statement(line, lineno)?);
    }
    Ok(policy)
}

fn parse_statement(line: &str, lineno: usize) -> Result<Statement, PolicyParseError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    // allow <subject> <action> <object> for <purpose>
    if tokens.len() != 6 {
        return Err(err(
            lineno,
            format!(
                "expected `allow <subject> <action> <object> for <purpose>`, got {} tokens",
                tokens.len()
            ),
        ));
    }
    if tokens[0] != "allow" {
        return Err(err(
            lineno,
            format!("expected `allow`, got `{}`", tokens[0]),
        ));
    }
    if tokens[4] != "for" {
        return Err(err(lineno, format!("expected `for`, got `{}`", tokens[4])));
    }
    let subject = match tokens[1].split_once(':') {
        Some(("role", r)) if !r.is_empty() => StatementSubject::Role(Symbol::new(r)),
        Some(("user", u)) if !u.is_empty() => StatementSubject::User(Symbol::new(u)),
        _ => {
            return Err(err(
                lineno,
                format!(
                    "subject must be `role:<name>` or `user:<name>`, got `{}`",
                    tokens[1]
                ),
            ))
        }
    };
    let action: Action = tokens[2].parse().map_err(|e| err(lineno, format!("{e}")))?;
    let object: ObjectPattern = tokens[3].parse().map_err(|e| err(lineno, format!("{e}")))?;
    let purpose = Symbol::new(tokens[5]);
    Ok(Statement {
        subject,
        action,
        object,
        purpose,
    })
}

/// Render a policy back to its text form (inverse of [`parse_policy`]).
pub fn format_policy(policy: &Policy) -> String {
    let mut out = String::new();
    for st in policy.statements() {
        let subject = match st.subject {
            StatementSubject::User(u) => format!("user:{u}"),
            StatementSubject::Role(r) => format!("role:{r}"),
        };
        out.push_str(&format!(
            "allow {subject} {} {} for {}\n",
            st.action, st.object, st.purpose
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::SubjectPattern;
    use cows::sym;

    #[test]
    fn parses_fig3_like_policy() {
        let text = "\
# Fig. 3 (first block)
allow role:Physician read [*]EPR/Clinical for treatment
allow role:Physician write [*]EPR/Clinical for treatment

allow role:Physician read [consent]EPR for clinicaltrial
";
        let p = parse_policy(text).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.statements()[0].purpose, sym("treatment"));
        assert_eq!(p.statements()[2].object.subject, SubjectPattern::Consenting);
    }

    #[test]
    fn round_trip() {
        let text = "\
allow role:Physician read [*]EPR/Clinical for treatment
allow user:bob write ClinicalTrial/Criteria for clinicaltrial
allow role:MedicalLabTech write [*]EPR/Clinical/Tests for treatment
";
        let p = parse_policy(text).unwrap();
        assert_eq!(format_policy(&p), text);
    }

    #[test]
    fn reports_line_numbers() {
        let text = "allow role:Physician read [*]EPR for treatment\nallow bogus\n";
        let e = parse_policy(text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_bad_action() {
        let e = parse_policy("allow role:R frobnicate [*]EPR for p\n").unwrap_err();
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_bad_subject() {
        let e = parse_policy("allow Physician read [*]EPR for p\n").unwrap_err();
        assert!(e.message.contains("subject"));
    }

    #[test]
    fn rejects_missing_for() {
        let e = parse_policy("allow role:R read [*]EPR as p\n").unwrap_err();
        assert!(e.message.contains("for"));
    }
}
