//! # Data protection policies with purpose
//!
//! The policy substrate of the paper (§3.2): role hierarchies (§3.1),
//! directory-like object hierarchies with explicit data subjects,
//! purpose-carrying statements (Def. 1), access requests (Def. 2) and the
//! authorization check (Def. 3), plus a line-oriented text format and the
//! Fig. 3 sample policy.
//!
//! ```
//! use policy::samples::{figure3_policy, hospital_context, treatment};
//! use policy::statement::{AccessRequest, Action};
//! use policy::object::ObjectId;
//! use cows::sym;
//!
//! let mut ctx = hospital_context();
//! ctx.register_case("HT-1", treatment());
//! ctx.register_purpose_task(treatment(), "T01");
//! let permitted = figure3_policy().evaluate(&AccessRequest {
//!     user: sym("John"),
//!     action: Action::Read,
//!     object: ObjectId::of_subject("Jane", "EPR/Clinical"),
//!     task: sym("T01"),
//!     case: sym("HT-1"),
//! }, &ctx);
//! assert!(permitted.is_permit());
//! ```

pub mod context;
pub mod hierarchy;
pub mod object;
pub mod parse;
pub mod samples;
pub mod statement;

pub use context::PolicyContext;
pub use hierarchy::RoleHierarchy;
pub use object::{ObjectId, ObjectPattern, SubjectPattern};
pub use parse::{format_policy, parse_policy, PolicyParseError};
pub use statement::{
    AccessRequest, Action, Decision, DenialReason, Policy, Statement, StatementSubject,
};
