//! The paper's sample policy (Fig. 3) and the hospital role hierarchy.

use crate::context::PolicyContext;
use crate::hierarchy::RoleHierarchy;
use crate::object::ObjectPattern;
use crate::parse::parse_policy;
use crate::statement::{Action, Policy, Statement, StatementSubject};
use cows::symbol::{sym, Symbol};

/// The `treatment` purpose (implemented by the Fig. 1 process).
pub fn treatment() -> Symbol {
    sym("treatment")
}

/// The `clinicaltrial` purpose (implemented by the Fig. 2 process).
pub fn clinical_trial_purpose() -> Symbol {
    sym("clinicaltrial")
}

/// The hospital role hierarchy of §3.2: GP, radiologist and cardiologist
/// specialize physician; medical lab technician specializes medical
/// technician.
pub fn hospital_roles() -> RoleHierarchy {
    let mut h = RoleHierarchy::new();
    h.specializes("GP", "Physician").expect("acyclic");
    h.specializes("Cardiologist", "Physician").expect("acyclic");
    h.specializes("Radiologist", "Physician").expect("acyclic");
    h.specializes("MedicalLabTech", "MedicalTech")
        .expect("acyclic");
    h
}

/// The Fig. 3 data protection policy, verbatim:
///
/// ```text
/// (Physician,      read,  [·]EPR/Clinical,        treatment)
/// (Physician,      write, [·]EPR/Clinical,        treatment)
/// (Physician,      read,  [·]EPR/Demographics,    treatment)
/// (MedicalTech,    read,  [·]EPR/Clinical,        treatment)
/// (MedicalTech,    read,  [·]EPR/Demographics,    treatment)
/// (MedicalLabTech, write, [·]EPR/Clinical/Tests,  treatment)
/// (Physician,      read,  [X]EPR,                 clinicaltrial)
/// ```
pub fn figure3_policy() -> Policy {
    let role = |r: &str| StatementSubject::Role(sym(r));
    Policy::with_statements(vec![
        Statement {
            subject: role("Physician"),
            action: Action::Read,
            object: ObjectPattern::any_subject("EPR/Clinical"),
            purpose: treatment(),
        },
        Statement {
            subject: role("Physician"),
            action: Action::Write,
            object: ObjectPattern::any_subject("EPR/Clinical"),
            purpose: treatment(),
        },
        Statement {
            subject: role("Physician"),
            action: Action::Read,
            object: ObjectPattern::any_subject("EPR/Demographics"),
            purpose: treatment(),
        },
        Statement {
            subject: role("MedicalTech"),
            action: Action::Read,
            object: ObjectPattern::any_subject("EPR/Clinical"),
            purpose: treatment(),
        },
        Statement {
            subject: role("MedicalTech"),
            action: Action::Read,
            object: ObjectPattern::any_subject("EPR/Demographics"),
            purpose: treatment(),
        },
        Statement {
            subject: role("MedicalLabTech"),
            action: Action::Write,
            object: ObjectPattern::any_subject("EPR/Clinical/Tests"),
            purpose: treatment(),
        },
        Statement {
            subject: role("Physician"),
            action: Action::Read,
            object: ObjectPattern::consenting("EPR"),
            purpose: clinical_trial_purpose(),
        },
    ])
}

/// Fig. 3 plus the statements the clinical-trial process additionally needs
/// (writing eligibility criteria, candidate lists, measurements and results
/// — resources the paper's Fig. 4 trail touches but Fig. 3 does not cover;
/// an extension, flagged as such in `DESIGN.md`).
pub fn extended_hospital_policy() -> Policy {
    let mut p = figure3_policy();
    let extra = parse_policy(
        "\
allow role:Physician write ClinicalTrial for clinicaltrial
allow role:Physician read ClinicalTrial for clinicaltrial
allow role:Physician execute ScanSoftware for treatment
allow role:MedicalTech execute ScanSoftware for treatment
allow role:Physician cancel Workflow for treatment
allow role:Physician write [*]EPR/Clinical/Scan for treatment
",
    )
    .expect("builtin policy parses");
    for st in extra.statements() {
        p.add(st.clone());
    }
    p
}

/// A ready-made evaluation context for the paper's running example: the
/// hospital hierarchy, the cast of Figs. 4 (John the GP, Bob the
/// cardiologist, Charlie the radiologist, plus a lab technician), and the
/// purposes of the two processes.
pub fn hospital_context() -> PolicyContext {
    let mut ctx = PolicyContext::new(hospital_roles());
    ctx.assign_role("John", "GP");
    ctx.assign_role("Bob", "Cardiologist");
    ctx.assign_role("Charlie", "Radiologist");
    ctx.assign_role("Dana", "MedicalLabTech");
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectId;
    use crate::statement::{AccessRequest, Decision};

    fn trial_ctx() -> PolicyContext {
        let mut ctx = hospital_context();
        ctx.register_case("HT-1", treatment());
        ctx.register_case("CT-1", clinical_trial_purpose());
        ctx.register_purpose_tasks(treatment(), [sym("T01"), sym("T06"), sym("T10")]);
        ctx.register_purpose_tasks(clinical_trial_purpose(), [sym("T92")]);
        ctx.grant_consent("Alice", clinical_trial_purpose());
        ctx
    }

    #[test]
    fn fig3_has_seven_statements() {
        assert_eq!(figure3_policy().len(), 7);
    }

    #[test]
    fn gp_reads_clinical_for_treatment() {
        let d = figure3_policy().evaluate(
            &AccessRequest {
                user: sym("John"),
                action: Action::Read,
                object: ObjectId::of_subject("Jane", "EPR/Clinical"),
                task: sym("T01"),
                case: sym("HT-1"),
            },
            &trial_ctx(),
        );
        assert!(d.is_permit());
    }

    #[test]
    fn lab_tech_cannot_read_demographics_as_physician() {
        // MedicalLabTech specializes MedicalTech, not Physician — the
        // MedicalTech statements apply instead.
        let d = figure3_policy().evaluate(
            &AccessRequest {
                user: sym("Dana"),
                action: Action::Read,
                object: ObjectId::of_subject("Jane", "EPR/Demographics"),
                task: sym("T01"),
                case: sym("HT-1"),
            },
            &trial_ctx(),
        );
        assert!(d.is_permit(), "MedicalTech statement covers the lab tech");
    }

    #[test]
    fn scenario_trial_without_consent_denied() {
        // §2: "the hospital staff cannot access Jane's information for
        // clinical trials" — Jane gave no consent.
        let d = figure3_policy().evaluate(
            &AccessRequest {
                user: sym("Bob"),
                action: Action::Read,
                object: ObjectId::of_subject("Jane", "EPR/Clinical"),
                task: sym("T92"),
                case: sym("CT-1"),
            },
            &trial_ctx(),
        );
        assert!(matches!(d, Decision::Deny(_)));
    }

    #[test]
    fn scenario_trial_with_consent_permitted() {
        let d = figure3_policy().evaluate(
            &AccessRequest {
                user: sym("Bob"),
                action: Action::Read,
                object: ObjectId::of_subject("Alice", "EPR/Clinical"),
                task: sym("T92"),
                case: sym("CT-1"),
            },
            &trial_ctx(),
        );
        assert!(d.is_permit());
    }

    #[test]
    fn extended_policy_covers_trial_bookkeeping() {
        let mut ctx = trial_ctx();
        ctx.register_purpose_tasks(clinical_trial_purpose(), [sym("T91")]);
        let d = extended_hospital_policy().evaluate(
            &AccessRequest {
                user: sym("Bob"),
                action: Action::Write,
                object: ObjectId::plain("ClinicalTrial/Criteria"),
                task: sym("T91"),
                case: sym("CT-1"),
            },
            &ctx,
        );
        assert!(d.is_permit());
    }
}
