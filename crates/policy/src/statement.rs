//! Data protection statements, policies and access-request evaluation.
//!
//! Def. 1: a statement is `(s, a, o, p)` with `s ∈ U ∪ R`, `a ∈ A`,
//! `o ∈ O`, `p ∈ P`. Def. 2: an access request is `(u, a, o, q, c)`.
//! Def. 3 grants the request iff some statement matches directly or through
//! the role/object hierarchies, and the case `c` is an instance of the
//! statement purpose `p` with `q` a task of `p`.

use crate::context::PolicyContext;
use crate::object::{ObjectId, ObjectPattern};
use cows::symbol::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The action set `A` of §3.1 (plus `cancel`, which Fig. 4 logs when a task
/// is aborted).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Action {
    Read,
    Write,
    Execute,
    Cancel,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Action::Read => "read",
            Action::Write => "write",
            Action::Execute => "execute",
            Action::Cancel => "cancel",
        };
        f.write_str(s)
    }
}

/// Parse error for [`Action`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionParseError(pub String);

impl fmt::Display for ActionParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown action `{}`", self.0)
    }
}

impl std::error::Error for ActionParseError {}

impl FromStr for Action {
    type Err = ActionParseError;
    fn from_str(s: &str) -> Result<Action, ActionParseError> {
        match s {
            "read" => Ok(Action::Read),
            "write" => Ok(Action::Write),
            "execute" => Ok(Action::Execute),
            "cancel" => Ok(Action::Cancel),
            other => Err(ActionParseError(other.to_string())),
        }
    }
}

/// The subject of a statement: a specific user or a role.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum StatementSubject {
    User(Symbol),
    Role(Symbol),
}

impl fmt::Display for StatementSubject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatementSubject::User(u) => write!(f, "user:{u}"),
            StatementSubject::Role(r) => write!(f, "role:{r}"),
        }
    }
}

/// Def. 1 — a data protection statement.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Statement {
    pub subject: StatementSubject,
    pub action: Action,
    pub object: ObjectPattern,
    pub purpose: Symbol,
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {}, {})",
            self.subject, self.action, self.object, self.purpose
        )
    }
}

/// Def. 2 — an access request `(u, a, o, q, c)`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AccessRequest {
    pub user: Symbol,
    pub action: Action,
    pub object: ObjectId,
    pub task: Symbol,
    pub case: Symbol,
}

impl fmt::Display for AccessRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {}, {}, {})",
            self.user, self.action, self.object, self.task, self.case
        )
    }
}

/// Why a request was denied — every Def. 3 condition that failed for the
/// closest statement, for auditability.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DenialReason {
    /// No statement subject/action/object matched at all.
    NoMatchingStatement,
    /// A statement matched but the case is not an instance of its purpose.
    CaseNotInstanceOfPurpose,
    /// A statement matched and the case is fine, but the task is not part
    /// of the purpose's process.
    TaskNotInPurpose,
}

/// The outcome of evaluating an access request.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Decision {
    Permit,
    Deny(DenialReason),
}

impl Decision {
    pub fn is_permit(&self) -> bool {
        matches!(self, Decision::Permit)
    }
}

/// Def. 1 — a data protection policy: a set of statements.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Policy {
    statements: Vec<Statement>,
}

impl Policy {
    pub fn new() -> Policy {
        Policy::default()
    }

    pub fn with_statements(statements: Vec<Statement>) -> Policy {
        Policy { statements }
    }

    pub fn add(&mut self, statement: Statement) {
        self.statements.push(statement);
    }

    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    pub fn len(&self) -> usize {
        self.statements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.statements.is_empty()
    }

    /// Def. 3 — evaluate an access request.
    ///
    /// The request is authorized if there is a statement `(s, a', o', p)`
    /// such that (i) `s = u`, or `s = r1`, `u` has role `r2` active and
    /// `r2 ≥R r1`; (ii) `a = a'`; (iii) `o' ≥O o`; (iv) `c` is an instance
    /// of `p` and `q` is a task in `p`.
    pub fn evaluate(&self, req: &AccessRequest, ctx: &PolicyContext) -> Decision {
        let mut best = DenialReason::NoMatchingStatement;
        for st in &self.statements {
            // (i) subject
            let subject_ok = match st.subject {
                StatementSubject::User(u) => u == req.user,
                StatementSubject::Role(r1) => ctx
                    .active_roles(req.user)
                    .iter()
                    .any(|&r2| ctx.roles().is_specialization_of(r2, r1)),
            };
            if !subject_ok {
                continue;
            }
            // (ii) action
            if st.action != req.action {
                continue;
            }
            // (iii) object, with consent resolved against the statement's
            // purpose
            let consented = req
                .object
                .subject
                .map(|subj| ctx.has_consented(subj, st.purpose))
                .unwrap_or(false);
            if !st.object.covers(&req.object, consented) {
                continue;
            }
            // (iv) purpose: case instance-of and task membership
            match ctx.purpose_of_case(req.case) {
                Some(p) if p == st.purpose => {
                    if ctx.purpose_has_task(st.purpose, req.task) {
                        return Decision::Permit;
                    }
                    best = DenialReason::TaskNotInPurpose;
                }
                _ => {
                    if best == DenialReason::NoMatchingStatement {
                        best = DenialReason::CaseNotInstanceOfPurpose;
                    }
                }
            }
        }
        Decision::Deny(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PolicyContext;
    use crate::hierarchy::RoleHierarchy;
    use cows::sym;

    fn ctx() -> PolicyContext {
        let mut roles = RoleHierarchy::new();
        roles.specializes("Cardiologist", "Physician").unwrap();
        let mut ctx = PolicyContext::new(roles);
        ctx.assign_role("bob", "Cardiologist");
        ctx.register_case("HT-1", "treatment");
        ctx.register_case("CT-1", "clinicaltrial");
        ctx.register_purpose_task("treatment", "T06");
        ctx.register_purpose_task("clinicaltrial", "T92");
        ctx.grant_consent("Alice", "clinicaltrial");
        ctx
    }

    fn policy() -> Policy {
        Policy::with_statements(vec![
            Statement {
                subject: StatementSubject::Role(sym("Physician")),
                action: Action::Read,
                object: ObjectPattern::any_subject("EPR/Clinical"),
                purpose: sym("treatment"),
            },
            Statement {
                subject: StatementSubject::Role(sym("Physician")),
                action: Action::Read,
                object: ObjectPattern::consenting("EPR"),
                purpose: sym("clinicaltrial"),
            },
        ])
    }

    fn req(user: &str, object: ObjectId, task: &str, case: &str) -> AccessRequest {
        AccessRequest {
            user: sym(user),
            action: Action::Read,
            object,
            task: sym(task),
            case: sym(case),
        }
    }

    #[test]
    fn role_hierarchy_grants_specialization() {
        let d = policy().evaluate(
            &req(
                "bob",
                ObjectId::of_subject("Jane", "EPR/Clinical"),
                "T06",
                "HT-1",
            ),
            &ctx(),
        );
        assert!(d.is_permit());
    }

    #[test]
    fn object_hierarchy_covers_subsections() {
        let d = policy().evaluate(
            &req(
                "bob",
                ObjectId::of_subject("Jane", "EPR/Clinical/Scan"),
                "T06",
                "HT-1",
            ),
            &ctx(),
        );
        assert!(d.is_permit());
    }

    #[test]
    fn wrong_action_denied() {
        let mut r = req(
            "bob",
            ObjectId::of_subject("Jane", "EPR/Clinical"),
            "T06",
            "HT-1",
        );
        r.action = Action::Write;
        assert_eq!(
            policy().evaluate(&r, &ctx()),
            Decision::Deny(DenialReason::NoMatchingStatement)
        );
    }

    #[test]
    fn unknown_user_denied() {
        let d = policy().evaluate(
            &req(
                "mallory",
                ObjectId::of_subject("Jane", "EPR/Clinical"),
                "T06",
                "HT-1",
            ),
            &ctx(),
        );
        assert!(!d.is_permit());
    }

    #[test]
    fn consent_gates_trial_access() {
        // Alice consented to the clinical trial: reads under CT-1/T92 pass.
        let d = policy().evaluate(
            &req(
                "bob",
                ObjectId::of_subject("Alice", "EPR/Clinical"),
                "T92",
                "CT-1",
            ),
            &ctx(),
        );
        assert!(d.is_permit());
        // Jane did not consent.
        let d = policy().evaluate(
            &req(
                "bob",
                ObjectId::of_subject("Jane", "EPR/Clinical"),
                "T92",
                "CT-1",
            ),
            &ctx(),
        );
        assert!(!d.is_permit());
    }

    #[test]
    fn task_must_belong_to_purpose() {
        // T92 is a clinical-trial task; requesting it under treatment fails
        // condition (iv).
        let d = policy().evaluate(
            &req(
                "bob",
                ObjectId::of_subject("Jane", "EPR/Clinical"),
                "T92",
                "HT-1",
            ),
            &ctx(),
        );
        assert_eq!(d, Decision::Deny(DenialReason::TaskNotInPurpose));
    }

    #[test]
    fn case_purpose_mismatch_detected() {
        // Statement purpose is treatment but the case is a trial instance.
        let d = policy().evaluate(
            &req(
                "bob",
                ObjectId::of_subject("Jane", "EPR/Clinical"),
                "T06",
                "CT-1",
            ),
            &ctx(),
        );
        assert_eq!(d, Decision::Deny(DenialReason::CaseNotInstanceOfPurpose));
    }

    #[test]
    fn display_matches_paper_tuples() {
        let st = Statement {
            subject: StatementSubject::Role(sym("Physician")),
            action: Action::Read,
            object: ObjectPattern::any_subject("EPR/Clinical"),
            purpose: sym("treatment"),
        };
        assert_eq!(
            st.to_string(),
            "(role:Physician, read, [*]EPR/Clinical, treatment)"
        );
    }
}
