//! Evaluation context: everything Def. 3 needs beyond the policy itself.
//!
//! * role activation — "during the authentication process, the role
//!   membership of users is determined by the system" (§3.2, footnote 2);
//! * the role hierarchy ≥R;
//! * consent — which data subjects allowed which purposes (Fig. 3's `[X]`);
//! * the case registry — which process instance implements which purpose;
//! * purpose/task membership — which tasks belong to which purpose's
//!   process.

use crate::hierarchy::RoleHierarchy;
use cows::symbol::Symbol;
use std::collections::{HashMap, HashSet};

/// Mutable registry backing policy evaluation.
#[derive(Clone, Debug, Default)]
pub struct PolicyContext {
    roles: RoleHierarchy,
    active_roles: HashMap<Symbol, Vec<Symbol>>,
    consent: HashMap<Symbol, HashSet<Symbol>>,
    case_purpose: HashMap<Symbol, Symbol>,
    purpose_tasks: HashMap<Symbol, HashSet<Symbol>>,
}

impl PolicyContext {
    pub fn new(roles: RoleHierarchy) -> PolicyContext {
        PolicyContext {
            roles,
            ..PolicyContext::default()
        }
    }

    pub fn roles(&self) -> &RoleHierarchy {
        &self.roles
    }

    pub fn roles_mut(&mut self) -> &mut RoleHierarchy {
        &mut self.roles
    }

    /// Activate `role` for `user`.
    pub fn assign_role(&mut self, user: impl Into<Symbol>, role: impl Into<Symbol>) {
        self.active_roles
            .entry(user.into())
            .or_default()
            .push(role.into());
    }

    /// Roles currently active for `user`.
    pub fn active_roles(&self, user: Symbol) -> &[Symbol] {
        self.active_roles
            .get(&user)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Record that `subject` consented to `purpose`.
    pub fn grant_consent(&mut self, subject: impl Into<Symbol>, purpose: impl Into<Symbol>) {
        self.consent
            .entry(subject.into())
            .or_default()
            .insert(purpose.into());
    }

    /// Withdraw a previously-granted consent (data protection regulations
    /// make consent revocable).
    pub fn revoke_consent(&mut self, subject: impl Into<Symbol>, purpose: impl Into<Symbol>) {
        if let Some(set) = self.consent.get_mut(&subject.into()) {
            set.remove(&purpose.into());
        }
    }

    pub fn has_consented(&self, subject: Symbol, purpose: Symbol) -> bool {
        self.consent
            .get(&subject)
            .map(|s| s.contains(&purpose))
            .unwrap_or(false)
    }

    /// Register a case (process instance) as implementing `purpose`.
    pub fn register_case(&mut self, case: impl Into<Symbol>, purpose: impl Into<Symbol>) {
        self.case_purpose.insert(case.into(), purpose.into());
    }

    pub fn purpose_of_case(&self, case: Symbol) -> Option<Symbol> {
        self.case_purpose.get(&case).copied()
    }

    /// Record that `task` belongs to the process implementing `purpose`.
    pub fn register_purpose_task(&mut self, purpose: impl Into<Symbol>, task: impl Into<Symbol>) {
        self.purpose_tasks
            .entry(purpose.into())
            .or_default()
            .insert(task.into());
    }

    /// Bulk registration of a purpose's task set.
    pub fn register_purpose_tasks(
        &mut self,
        purpose: impl Into<Symbol>,
        tasks: impl IntoIterator<Item = Symbol>,
    ) {
        let entry = self.purpose_tasks.entry(purpose.into()).or_default();
        entry.extend(tasks);
    }

    pub fn purpose_has_task(&self, purpose: Symbol, task: Symbol) -> bool {
        self.purpose_tasks
            .get(&purpose)
            .map(|t| t.contains(&task))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    #[test]
    fn role_assignment() {
        let mut ctx = PolicyContext::new(RoleHierarchy::new());
        ctx.assign_role("bob", "Cardiologist");
        ctx.assign_role("bob", "Researcher");
        assert_eq!(
            ctx.active_roles(sym("bob")),
            &[sym("Cardiologist"), sym("Researcher")]
        );
        assert!(ctx.active_roles(sym("nobody")).is_empty());
    }

    #[test]
    fn consent_lifecycle() {
        let mut ctx = PolicyContext::new(RoleHierarchy::new());
        assert!(!ctx.has_consented(sym("Jane"), sym("clinicaltrial")));
        ctx.grant_consent("Jane", "clinicaltrial");
        assert!(ctx.has_consented(sym("Jane"), sym("clinicaltrial")));
        ctx.revoke_consent("Jane", "clinicaltrial");
        assert!(!ctx.has_consented(sym("Jane"), sym("clinicaltrial")));
    }

    #[test]
    fn case_registry() {
        let mut ctx = PolicyContext::new(RoleHierarchy::new());
        ctx.register_case("HT-1", "treatment");
        assert_eq!(ctx.purpose_of_case(sym("HT-1")), Some(sym("treatment")));
        assert_eq!(ctx.purpose_of_case(sym("HT-2")), None);
    }

    #[test]
    fn purpose_tasks_bulk() {
        let mut ctx = PolicyContext::new(RoleHierarchy::new());
        ctx.register_purpose_tasks("treatment", [sym("T01"), sym("T02")]);
        assert!(ctx.purpose_has_task(sym("treatment"), sym("T01")));
        assert!(!ctx.purpose_has_task(sym("treatment"), sym("T91")));
    }
}
