//! Role hierarchy.
//!
//! §3.1: "roles are organized into a hierarchical structure under partial
//! ordering ≥R … r1 ≥R r2 means r1 is a specialization of r2". A
//! cardiologist is a physician: `Cardiologist ≥R Physician`.

use cows::symbol::Symbol;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A partial order of roles under specialization.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RoleHierarchy {
    /// `generalizations[r]` = direct generalizations of `r`.
    generalizations: HashMap<Symbol, Vec<Symbol>>,
    /// Every role ever mentioned.
    roles: HashSet<Symbol>,
}

/// Error raised when an edge would make the hierarchy cyclic (and thus not
/// a partial order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    pub specialized: Symbol,
    pub general: Symbol,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "adding `{} specializes {}` would create a cycle",
            self.specialized, self.general
        )
    }
}

impl std::error::Error for CycleError {}

impl RoleHierarchy {
    pub fn new() -> RoleHierarchy {
        RoleHierarchy::default()
    }

    /// Register a role with no relations (idempotent).
    pub fn add_role(&mut self, role: impl Into<Symbol>) {
        self.roles.insert(role.into());
    }

    /// Declare `specialized ≥R general`.
    pub fn specializes(
        &mut self,
        specialized: impl Into<Symbol>,
        general: impl Into<Symbol>,
    ) -> Result<(), CycleError> {
        let s = specialized.into();
        let g = general.into();
        // Reject edges that would close a cycle: g must not already
        // specialize s.
        if s == g || self.is_specialization_of(g, s) {
            return Err(CycleError {
                specialized: s,
                general: g,
            });
        }
        self.roles.insert(s);
        self.roles.insert(g);
        self.generalizations.entry(s).or_default().push(g);
        Ok(())
    }

    /// Whether `a ≥R b` (a specializes b). Reflexive and transitive.
    pub fn is_specialization_of(&self, a: Symbol, b: Symbol) -> bool {
        if a == b {
            return true;
        }
        let mut stack = vec![a];
        let mut seen = HashSet::new();
        while let Some(r) = stack.pop() {
            if !seen.insert(r) {
                continue;
            }
            if let Some(gs) = self.generalizations.get(&r) {
                for &g in gs {
                    if g == b {
                        return true;
                    }
                    stack.push(g);
                }
            }
        }
        false
    }

    /// A content fingerprint of the partial order: equal hierarchies (same
    /// roles, same direct-specialization edges, regardless of insertion
    /// order) hash equal. Caches keyed on role-matching decisions (the
    /// replay trie) bind to this so a transition memoized under one
    /// hierarchy is never served under a different one.
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut roles: Vec<&str> = self.roles.iter().map(|r| r.as_str()).collect();
        roles.sort_unstable();
        let mut edges: Vec<(&str, &str)> = self
            .generalizations
            .iter()
            .flat_map(|(s, gs)| gs.iter().map(move |g| (s.as_str(), g.as_str())))
            .collect();
        edges.sort_unstable();
        let mut h = DefaultHasher::new();
        roles.hash(&mut h);
        edges.hash(&mut h);
        h.finish()
    }

    /// All roles `b` such that `a ≥R b`, including `a`.
    pub fn generalizations_of(&self, a: Symbol) -> HashSet<Symbol> {
        let mut out = HashSet::new();
        let mut stack = vec![a];
        while let Some(r) = stack.pop() {
            if out.insert(r) {
                if let Some(gs) = self.generalizations.get(&r) {
                    stack.extend(gs.iter().copied());
                }
            }
        }
        out
    }

    pub fn roles(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.roles.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    fn hospital() -> RoleHierarchy {
        let mut h = RoleHierarchy::new();
        h.specializes("GP", "Physician").unwrap();
        h.specializes("Cardiologist", "Physician").unwrap();
        h.specializes("Radiologist", "Physician").unwrap();
        h.specializes("MedicalLabTech", "MedicalTech").unwrap();
        h.specializes("Physician", "HospitalStaff").unwrap();
        h
    }

    #[test]
    fn reflexive() {
        let h = hospital();
        assert!(h.is_specialization_of(sym("GP"), sym("GP")));
    }

    #[test]
    fn direct_and_transitive() {
        let h = hospital();
        assert!(h.is_specialization_of(sym("Cardiologist"), sym("Physician")));
        assert!(h.is_specialization_of(sym("Cardiologist"), sym("HospitalStaff")));
    }

    #[test]
    fn not_symmetric() {
        let h = hospital();
        assert!(!h.is_specialization_of(sym("Physician"), sym("Cardiologist")));
    }

    #[test]
    fn unrelated_roles() {
        let h = hospital();
        assert!(!h.is_specialization_of(sym("MedicalLabTech"), sym("Physician")));
    }

    #[test]
    fn cycles_rejected() {
        let mut h = hospital();
        assert!(h.specializes("Physician", "Cardiologist").is_err());
        assert!(h.specializes("GP", "GP").is_err());
    }

    #[test]
    fn generalization_closure() {
        let h = hospital();
        let gs = h.generalizations_of(sym("GP"));
        assert!(gs.contains(&sym("GP")));
        assert!(gs.contains(&sym("Physician")));
        assert!(gs.contains(&sym("HospitalStaff")));
        assert!(!gs.contains(&sym("Cardiologist")));
    }
}
