//! Per-tenant state: a monitor handle, a bounded ingest queue, and the
//! counter set whose invariant the whole service is tested against.
//!
//! Every line a tenant accepts is accounted for exactly once:
//!
//! ```text
//! lines_accepted = entries_audited + lines_quarantined + queued_entries
//! ```
//!
//! holds at *every instant* under the tenant lock, not just at quiescence.
//! The ingest worker preserves it by construction: it clones the front
//! batch, replays it through the monitor, and only then — under the lock —
//! pops the batch and moves its count from `queued_entries` to
//! `entries_audited`. A reader sampling the counters mid-ingest sees the
//! batch still queued; it never sees entries in limbo. The soak test
//! (`cargo test -- --ignored soak`) hammers this from 8 threads.
//!
//! Admission control is whole-batch: a submit that would push
//! `queued_entries` past the watermark is rejected with `429` without
//! enqueueing *anything*, so accepted entries are never dropped or
//! reordered — the client retries the entire batch after `Retry-After`.

use audit::entry::LogEntry;
use audit::salvage::parse_trail_salvage;
use obs::Registry;
use purpose_control::pool::MonitorHandle;
use purpose_control::{register_audit_metrics, CheckError, LiveConfig, ShardedMonitor};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::{Condvar, Mutex};

/// The monotonic counters behind the invariant, plus queue bookkeeping.
#[derive(Default)]
pub struct Counters {
    pub lines_accepted: u64,
    pub lines_quarantined: u64,
    pub entries_audited: u64,
    pub queued_entries: u64,
    pub batches_accepted: u64,
    pub batches_rejected: u64,
    pub checkpoints: u64,
    pub requests: u64,
    pub http_errors: u64,
}

/// Trace context riding along with a queued batch: the request's trace,
/// its root (accept) span, and the queue-wait span opened at admission
/// and closed when the worker dequeues the batch.
struct TraceCtx {
    trace: obs::TraceId,
    root: obs::SpanId,
    queue_wait: obs::OpenSpan,
}

/// One admitted batch awaiting replay.
struct Batch {
    entries: Vec<LogEntry>,
    /// When the batch entered the queue (queue-wait latency histogram —
    /// recorded whether or not the request is traced).
    queued_at: std::time::Instant,
    trace: Option<TraceCtx>,
}

struct Queue {
    batches: VecDeque<Batch>,
    counters: Counters,
    /// Set once at shutdown: the worker drains what is queued, then exits.
    closing: bool,
    /// A live-replay failure is terminal for the tenant's worker; the
    /// error is parked here for `/healthz` and the drain report.
    worker_error: Option<CheckError>,
}

/// One hosted tenant. Shared between the HTTP handlers, the ingest
/// worker, and the checkpoint path.
pub struct Tenant {
    pub name: String,
    pub handle: MonitorHandle,
    /// Per-tenant metric registry, pre-declared with the full closed audit
    /// vocabulary so the JSON exposition always validates against
    /// `schemas/metrics.schema.json`.
    pub registry: Registry,
    /// Request tracer shared with the whole service ([`obs::Tracer::noop`]
    /// when tracing is off — every span site is one branch).
    pub tracer: obs::Tracer,
    queue: Mutex<Queue>,
    wake: Condvar,
    /// Entries admitted to the queue at once, beyond which submits 429.
    pub watermark: u64,
    /// Stream offset carried over from the checkpoint this tenant resumed
    /// from. The counters in [`Counters`] are process-local (the
    /// invariant is over this process's lifetime); the *stream* offset a
    /// checkpoint records is `base_offset + entries_audited`, so a
    /// restart never regresses a checkpoint.
    pub base_offset: u64,
}

/// Outcome of one batch submit.
pub enum Admission {
    /// Batch enqueued; counts for the response body.
    Accepted {
        accepted: u64,
        quarantined: u64,
        queued: u64,
    },
    /// Watermark exceeded; nothing was enqueued.
    Backpressure { queued: u64, watermark: u64 },
}

impl Tenant {
    pub fn new(
        name: impl Into<String>,
        handle: MonitorHandle,
        watermark: u64,
        base_offset: u64,
    ) -> Tenant {
        Tenant::with_tracer(name, handle, watermark, base_offset, obs::Tracer::noop())
    }

    pub fn with_tracer(
        name: impl Into<String>,
        handle: MonitorHandle,
        watermark: u64,
        base_offset: u64,
        tracer: obs::Tracer,
    ) -> Tenant {
        let registry = Registry::new();
        register_audit_metrics(&registry);
        handle.set_tracer(&tracer);
        Tenant {
            name: name.into(),
            handle,
            registry,
            tracer,
            queue: Mutex::new(Queue {
                batches: VecDeque::new(),
                counters: Counters::default(),
                closing: false,
                worker_error: None,
            }),
            wake: Condvar::new(),
            watermark,
            base_offset,
        }
    }

    /// The tenant's position in its entry stream: entries audited across
    /// every process incarnation — what a checkpoint records.
    pub fn stream_offset(&self) -> u64 {
        self.base_offset + self.counters().entries_audited
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Salvage-parse a submitted trail body and either enqueue it whole or
    /// refuse it whole. Malformed lines inside an *accepted* batch are
    /// quarantined (counted, never replayed) — same degraded-mode contract
    /// as `purposectl audit --salvage`.
    ///
    /// `trace` is the submitting request's `(trace, root span)` context.
    /// When the batch is enqueued, the trace gains a completion hold and a
    /// queue-wait span that the ingest worker closes — and requests with
    /// quarantined lines or a backpressure refusal are force-kept by the
    /// tail sampler.
    pub fn submit(&self, body: &str, trace: Option<(obs::TraceId, obs::SpanId)>) -> Admission {
        let (trail, quarantine) = parse_trail_salvage(body);
        let kept = trail.len() as u64;
        let scanned = quarantine.scanned as u64;
        let quarantined = scanned - kept;
        let mut q = self.lock();
        if q.counters.queued_entries + kept > self.watermark {
            q.counters.batches_rejected += 1;
            if let Some((t, _)) = trace {
                self.tracer.force_keep(t);
            }
            return Admission::Backpressure {
                queued: q.counters.queued_entries,
                watermark: self.watermark,
            };
        }
        q.counters.lines_accepted += scanned;
        q.counters.lines_quarantined += quarantined;
        q.counters.queued_entries += kept;
        q.counters.batches_accepted += 1;
        if quarantined > 0 {
            if let Some((t, _)) = trace {
                self.tracer.force_keep(t);
            }
        }
        if kept > 0 {
            let ctx = trace.map(|(t, root)| {
                self.tracer.retain(t);
                TraceCtx {
                    trace: t,
                    root,
                    queue_wait: self.tracer.begin(t, Some(root), obs::Stage::QueueWait),
                }
            });
            q.batches.push_back(Batch {
                entries: trail.entries().to_vec(),
                queued_at: std::time::Instant::now(),
                trace: ctx,
            });
        }
        let queued = q.counters.queued_entries;
        drop(q);
        self.wake.notify_all();
        obs::flight::record(|| obs::ObsEvent::QueueDepth {
            tenant: self.name.clone(),
            depth: queued,
        });
        Admission::Accepted {
            accepted: kept,
            quarantined,
            queued,
        }
    }

    /// The ingest worker body: replay queued batches until closed + empty.
    /// Run on a dedicated thread per tenant.
    pub fn worker_loop(&self) {
        loop {
            let (entries, queued_at, ctx) = {
                let mut q = self.lock();
                loop {
                    if q.worker_error.is_some() {
                        return;
                    }
                    if let Some(front) = q.batches.front() {
                        break (
                            front.entries.clone(),
                            front.queued_at,
                            front
                                .trace
                                .as_ref()
                                .map(|c| (c.trace, c.root, c.queue_wait)),
                        );
                    }
                    if q.closing {
                        return;
                    }
                    q = self.wake.wait(q).unwrap_or_else(|p| p.into_inner());
                }
            };
            // The batch leaves the queue now (conceptually): close its
            // queue-wait span and open the replay span under the same root.
            self.registry.observe(
                "stage_latency_us_queue_wait",
                queued_at.elapsed().as_micros() as u64,
            );
            let replay_span = ctx.map(|(trace, root, queue_wait)| {
                self.tracer.finish(queue_wait, None);
                self.tracer.begin(trace, Some(root), obs::Stage::Replay)
            });
            let alarms_before = ctx.map(|_| self.handle.stats().alarms);
            let replay_start = std::time::Instant::now();
            let outcome = self
                .handle
                .ingest_traced(&entries, replay_span.map(|s| (s.trace, s.span)));
            self.registry.observe(
                "stage_latency_us_replay",
                replay_start.elapsed().as_micros() as u64,
            );
            if let Some(span) = replay_span {
                self.tracer.finish(span, None);
            }
            let mut q = self.lock();
            match outcome {
                Ok(()) => {
                    q.batches.pop_front();
                    let n = entries.len() as u64;
                    q.counters.queued_entries -= n;
                    q.counters.entries_audited += n;
                    let offset = self.base_offset + q.counters.entries_audited;
                    drop(q);
                    obs::flight::record(|| obs::ObsEvent::OffsetCommit {
                        tenant: self.name.clone(),
                        offset,
                    });
                    // Verdict stage: the post-replay bookkeeping — alarm
                    // delta, offset commit, tail-sampling decision.
                    if let Some((trace, root, _)) = ctx {
                        let verdict = self.tracer.begin(trace, Some(root), obs::Stage::Verdict);
                        let alarmed = alarms_before.is_some_and(|b| self.handle.stats().alarms > b);
                        if alarmed {
                            self.tracer.force_keep(trace);
                        }
                        let verdict_us = self.tracer.finish(verdict, None);
                        self.registry
                            .observe("stage_latency_us_verdict", verdict_us);
                        self.tracer.complete(trace);
                    }
                }
                Err(e) => {
                    // Leave the batch queued (the invariant still holds)
                    // and park the error: the tenant is now read-only.
                    obs::flight::record(|| obs::ObsEvent::Diagnostic {
                        detail: format!("tenant {}: worker failed: {e}", self.name),
                    });
                    obs::flight::dump("worker failure");
                    if let Some((trace, _, _)) = ctx {
                        self.tracer.force_keep(trace);
                        self.tracer.complete(trace);
                    }
                    q.worker_error = Some(e);
                    drop(q);
                }
            }
            self.wake.notify_all();
        }
    }

    /// Ask the worker to exit once the queue is drained.
    pub fn close(&self) {
        self.lock().closing = true;
        self.wake.notify_all();
    }

    /// Block until the queue is empty (or the worker died). Returns
    /// `false` on worker failure.
    pub fn drain(&self) -> bool {
        let mut q = self.lock();
        while !q.batches.is_empty() && q.worker_error.is_none() {
            q = self.wake.wait(q).unwrap_or_else(|p| p.into_inner());
        }
        q.worker_error.is_none()
    }

    /// Snapshot the counters (one lock, consistent view).
    pub fn counters(&self) -> Counters {
        let q = self.lock();
        Counters {
            lines_accepted: q.counters.lines_accepted,
            lines_quarantined: q.counters.lines_quarantined,
            entries_audited: q.counters.entries_audited,
            queued_entries: q.counters.queued_entries,
            batches_accepted: q.counters.batches_accepted,
            batches_rejected: q.counters.batches_rejected,
            checkpoints: q.counters.checkpoints,
            requests: q.counters.requests,
            http_errors: q.counters.http_errors,
        }
    }

    pub fn worker_failed(&self) -> bool {
        self.lock().worker_error.is_some()
    }

    pub fn note_request(&self) {
        self.lock().counters.requests += 1;
    }

    pub fn note_http_error(&self) {
        self.lock().counters.http_errors += 1;
    }

    pub fn note_checkpoint(&self) {
        self.lock().counters.checkpoints += 1;
    }

    /// Fold the monitor's live-metric deltas and the serve counters into
    /// the tenant registry, then return it for exposition.
    pub fn export_metrics(&self) -> &Registry {
        self.handle.flush_metrics(&self.registry);
        let c = self.counters();
        self.registry
            .set_counter("serve_lines_accepted", c.lines_accepted);
        self.registry
            .set_counter("serve_lines_quarantined", c.lines_quarantined);
        self.registry
            .set_counter("serve_entries_audited", c.entries_audited);
        self.registry
            .set_counter("serve_batches_accepted", c.batches_accepted);
        self.registry
            .set_counter("serve_batches_rejected", c.batches_rejected);
        self.registry
            .set_counter("serve_checkpoints_total", c.checkpoints);
        self.registry
            .set_counter("serve_requests_total", c.requests);
        self.registry
            .set_counter("serve_http_errors_total", c.http_errors);
        self.registry
            .set_gauge("serve_queue_depth", c.queued_entries as f64);
        self.registry
            .set_gauge("live_open_cases", self.handle.open_cases() as f64);
        // The service embeds no event recorder of its own; the aggregate
        // still carries flight-ring and tracer losses.
        purpose_control::metrics::record_observability_metrics(
            &self.registry,
            &obs::Recorder::noop(),
            &self.tracer,
        );
        &self.registry
    }
}

/// Why a tenant could not resume from its checkpoint file. Every variant
/// is fail-open: the service starts the tenant cold and reports the issue;
/// it never panics and never refuses to boot.
#[derive(Debug)]
pub enum RestoreIssue {
    /// A checkpoint file exists for a tenant no longer configured —
    /// the tenant set changed between checkpoint and restore.
    OrphanCheckpoint { tenant: String },
    /// The configured tenant's checkpoint exists but cannot be read.
    Unreadable { tenant: String, reason: String },
    /// The checkpoint decoded but is incompatible (corrupt payload,
    /// shard-count mismatch, wrong magic…); carries the monitor's reason.
    Incompatible { tenant: String, reason: String },
}

impl std::fmt::Display for RestoreIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreIssue::OrphanCheckpoint { tenant } => {
                write!(
                    f,
                    "tenant `{tenant}`: orphan checkpoint (tenant no longer configured); ignored"
                )
            }
            RestoreIssue::Unreadable { tenant, reason } => {
                write!(
                    f,
                    "tenant `{tenant}`: checkpoint unreadable ({reason}); starting cold"
                )
            }
            RestoreIssue::Incompatible { tenant, reason } => {
                write!(
                    f,
                    "tenant `{tenant}`: checkpoint incompatible ({reason}); starting cold"
                )
            }
        }
    }
}

impl std::error::Error for RestoreIssue {}

/// The checkpoint file for one tenant under `dir`.
pub fn checkpoint_path(dir: &Path, tenant: &str) -> std::path::PathBuf {
    dir.join(format!("{tenant}.ckpt"))
}

/// Restore one tenant's monitor from `dir`, or start it cold. Returns the
/// monitor, the stream offset (entries already audited at checkpoint
/// time), and the typed issue when the warm path failed.
pub fn restore_tenant(
    dir: Option<&Path>,
    tenant: &str,
    auditor: purpose_control::Auditor,
    config: &LiveConfig,
    shards: usize,
) -> (ShardedMonitor, u64, Option<RestoreIssue>) {
    let cold = |auditor| ShardedMonitor::new(auditor, config, shards);
    let Some(dir) = dir else {
        return (cold(auditor), 0, None);
    };
    let path = checkpoint_path(dir, tenant);
    if !path.exists() {
        return (cold(auditor), 0, None);
    }
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            let issue = RestoreIssue::Unreadable {
                tenant: tenant.to_string(),
                reason: e.to_string(),
            };
            return (cold(auditor), 0, Some(issue));
        }
    };
    match ShardedMonitor::restore(auditor.clone(), config, shards, &bytes) {
        Ok((monitor, offset)) => (monitor, offset, None),
        Err(e) => {
            let issue = RestoreIssue::Incompatible {
                tenant: tenant.to_string(),
                reason: e.to_string(),
            };
            (cold(auditor), 0, Some(issue))
        }
    }
}

/// Detect checkpoints for tenants that are no longer configured — the
/// "tenant removed between checkpoint and restore" half of a changed
/// tenant set. (A tenant *added* has no checkpoint: a clean cold start.)
pub fn orphan_checkpoints(dir: &Path, configured: &[&str]) -> Vec<RestoreIssue> {
    let mut issues = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return issues;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(tenant) = name.strip_suffix(".ckpt") else {
            continue;
        };
        if !configured.contains(&tenant) {
            issues.push(RestoreIssue::OrphanCheckpoint {
                tenant: tenant.to_string(),
            });
        }
    }
    issues.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
    issues
}
