//! # serve — the multi-tenant streaming audit service
//!
//! `purposectl serve` turns the a-posteriori auditing pipeline into an
//! *operational* capability: a resident daemon hosting one warm monitor
//! per tenant (purpose universe), answering "was this access for the
//! stated purpose?" over a hand-rolled HTTP/1.1 surface (see [`http`] —
//! the workspace has no external dependencies to lean on).
//!
//! ## Endpoints
//!
//! | Method | Path                        | Purpose                                  |
//! |--------|-----------------------------|------------------------------------------|
//! | POST   | `/v1/{tenant}/entries`      | submit a trail batch (salvage semantics) |
//! | GET    | `/v1/{tenant}/cases/{id}`   | one case's verdict + evidence            |
//! | GET    | `/v1/{tenant}/verdicts`     | open/alarmed summary                     |
//! | GET    | `/v1/{tenant}/metrics`      | per-tenant JSON metrics (schema-valid)   |
//! | GET    | `/metrics`                  | Prometheus across tenants, `tenant` label|
//! | GET    | `/healthz`                  | liveness + tenant worker health          |
//! | POST   | `/admin/checkpoint`         | checkpoint every tenant to disk          |
//!
//! Ingest is asynchronous: a submit enqueues the batch on the tenant's
//! bounded queue (backpressure: `429` + `Retry-After` past the watermark —
//! whole-batch, so accepted entries are never dropped or reordered) and a
//! per-tenant worker replays it through the tenant's [`ShardedMonitor`].
//! Graceful shutdown drains every queue, then checkpoints each tenant to
//! `<dir>/<tenant>.ckpt` with the stream offset = entries audited; the
//! next boot resumes warm, fail-open on any checkpoint problem (typed
//! [`RestoreIssue`]s, never a panic — see [`tenant`]).

pub mod http;
pub mod tenant;

pub use tenant::{
    checkpoint_path, orphan_checkpoints, restore_tenant, Admission, Counters, RestoreIssue, Tenant,
};

use http::{read_request, write_response, Limits, Request};
use obs::json::escape;
use purpose_control::durable::{atomic_write_sync, SyncPolicy};
use purpose_control::pool::MonitorHandle;
use purpose_control::replay::Verdict;
use purpose_control::{Auditor, LiveConfig};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Service configuration. `addr` may name port 0 for an ephemeral port —
/// the bound address is printed/reported by [`Server::addr`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub addr: String,
    /// Per-tenant admission watermark: max entries queued awaiting replay.
    pub watermark: u64,
    /// Where tenant checkpoints live (resume source and drain target).
    pub checkpoint_dir: Option<PathBuf>,
    pub shards: usize,
    pub live: LiveConfig,
    pub limits: Limits,
    /// Request tracer ([`obs::Tracer::noop`] disables tracing entirely).
    pub tracer: obs::Tracer,
    /// Structured per-request access log (JSONL, trace-id correlated).
    pub access_log: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            watermark: 100_000,
            checkpoint_dir: None,
            shards: 4,
            live: LiveConfig::default(),
            limits: Limits::default(),
            tracer: obs::Tracer::noop(),
            access_log: None,
        }
    }
}

/// One tenant to host: a name and the auditor for its purpose universe.
pub struct TenantSpec {
    pub name: String,
    pub auditor: Auditor,
}

/// What shutdown accomplished, per tenant.
#[derive(Debug)]
pub struct DrainReport {
    /// `(tenant, audited_offset, checkpoint_file)` per tenant, name order.
    pub checkpoints: Vec<(String, u64, Option<PathBuf>)>,
    /// Tenants whose worker died before the drain finished.
    pub failed: Vec<String>,
}

struct State {
    tenants: BTreeMap<String, Arc<Tenant>>,
    limits: Limits,
    checkpoint_dir: Option<PathBuf>,
    /// Fsync cadence for checkpoint writes (from the live config, so one
    /// `--durability` flag governs every durable artifact).
    durability: SyncPolicy,
    stop: AtomicBool,
    issues: Vec<RestoreIssue>,
    tracer: obs::Tracer,
    /// Line-buffered access log sink (append mode; one JSON line per
    /// request, written under this lock so lines never interleave).
    access_log: Option<std::sync::Mutex<std::fs::File>>,
}

/// A running service. Dropping without [`Server::shutdown`] leaks the
/// worker threads (they exit with the process) — tests and the CLI always
/// shut down explicitly.
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Boot failure (bind error, duplicate tenant name).
#[derive(Debug)]
pub enum ServeError {
    Bind(std::io::Error),
    DuplicateTenant(String),
    Checkpoint(String),
    AccessLog(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "cannot bind: {e}"),
            ServeError::DuplicateTenant(t) => write!(f, "duplicate tenant `{t}`"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
            ServeError::AccessLog(e) => write!(f, "cannot open access log: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl Server {
    /// Restore-or-cold-start every tenant, bind, and start serving.
    /// Restore problems surface as typed [`Server::restore_issues`], never
    /// boot failures.
    pub fn start(specs: Vec<TenantSpec>, config: ServeConfig) -> Result<Server, ServeError> {
        let mut tenants = BTreeMap::new();
        let mut issues = Vec::new();
        if let Some(dir) = &config.checkpoint_dir {
            let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
            issues.extend(orphan_checkpoints(dir, &names));
        }
        for spec in specs {
            let (monitor, offset, issue) = restore_tenant(
                config.checkpoint_dir.as_deref(),
                &spec.name,
                spec.auditor,
                &config.live,
                config.shards,
            );
            issues.extend(issue);
            let tenant = Arc::new(Tenant::with_tracer(
                spec.name.clone(),
                MonitorHandle::new(monitor),
                config.watermark,
                offset,
                config.tracer.clone(),
            ));
            if tenants.insert(spec.name.clone(), tenant).is_some() {
                return Err(ServeError::DuplicateTenant(spec.name));
            }
        }
        let listener = TcpListener::bind(&config.addr).map_err(ServeError::Bind)?;
        let addr = listener.local_addr().map_err(ServeError::Bind)?;
        listener.set_nonblocking(true).map_err(ServeError::Bind)?;

        let access_log = match &config.access_log {
            Some(path) => {
                if let Some(parent) = path.parent() {
                    let _ = std::fs::create_dir_all(parent);
                }
                let file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| ServeError::AccessLog(format!("{}: {e}", path.display())))?;
                Some(std::sync::Mutex::new(file))
            }
            None => None,
        };

        let state = Arc::new(State {
            tenants,
            limits: config.limits,
            checkpoint_dir: config.checkpoint_dir.clone(),
            durability: config.live.durability,
            stop: AtomicBool::new(false),
            issues,
            tracer: config.tracer.clone(),
            access_log,
        });

        let workers = state
            .tenants
            .values()
            .map(|tenant| {
                let tenant = tenant.clone();
                std::thread::spawn(move || tenant.worker_loop())
            })
            .collect();

        let accept_state = state.clone();
        let accept_thread = std::thread::spawn(move || {
            while !accept_state.stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_state = accept_state.clone();
                        std::thread::spawn(move || serve_connection(stream, conn_state));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        });

        Ok(Server {
            state,
            addr,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Typed problems found while resuming from checkpoints at boot.
    pub fn restore_issues(&self) -> &[RestoreIssue] {
        &self.state.issues
    }

    pub fn tenant(&self, name: &str) -> Option<&Arc<Tenant>> {
        self.state.tenants.get(name)
    }

    /// Whether a SIGTERM-style stop has been requested externally.
    pub fn stop_requested(&self) -> bool {
        self.state.stop.load(Ordering::SeqCst)
    }

    /// Request shutdown from another thread (e.g. a signal handler flag
    /// poller). Idempotent; `shutdown` performs the actual drain.
    pub fn request_stop(&self) {
        self.state.stop.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting, drain every tenant queue, then
    /// checkpoint each tenant to `<dir>/<tenant>.ckpt` at its audited
    /// offset. Returns what was written.
    pub fn shutdown(mut self) -> Result<DrainReport, ServeError> {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let mut failed = Vec::new();
        for (name, tenant) in &self.state.tenants {
            tenant.close();
            if !tenant.drain() {
                failed.push(name.clone());
            }
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let mut checkpoints = Vec::new();
        for (name, tenant) in &self.state.tenants {
            let offset = tenant.stream_offset();
            let path = match &self.state.checkpoint_dir {
                Some(dir) => {
                    let bytes = tenant
                        .handle
                        .checkpoint(offset)
                        .map_err(|e| ServeError::Checkpoint(format!("tenant `{name}`: {e}")))?;
                    std::fs::create_dir_all(dir)
                        .map_err(|e| ServeError::Checkpoint(format!("{}: {e}", dir.display())))?;
                    let path = checkpoint_path(dir, name);
                    atomic_write_sync(&path, &bytes, self.state.durability)
                        .map_err(|e| ServeError::Checkpoint(format!("{}: {e}", path.display())))?;
                    Some(path)
                }
                None => None,
            };
            checkpoints.push((name.clone(), offset, path));
        }
        Ok(DrainReport {
            checkpoints,
            failed,
        })
    }
}

/// Wait until every tenant's queue is empty — test/bench helper to
/// quiesce before reading verdicts.
pub fn quiesce(server: &Server) {
    for tenant in server.state.tenants.values() {
        tenant.drain();
    }
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

fn serve_connection(stream: TcpStream, state: Arc<State>) {
    // Both directions get the deadline: a reader that dribbles bytes
    // (slow loris) trips the read timeout and is owed a 408; a client
    // that stops draining its receive window can no longer pin a worker
    // in write_all forever.
    let _ = stream.set_read_timeout(Some(state.limits.io_timeout));
    let _ = stream.set_write_timeout(Some(state.limits.io_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader, &state.limits) {
            Ok(r) => r,
            Err(e) => {
                // Framing errors owe the client a status before the drop;
                // clean EOF and transport errors just end the connection.
                if let Some((status, reason)) = e.status() {
                    let body = error_body(&format!("{e}"));
                    let _ = write_response(
                        &mut writer,
                        status,
                        reason,
                        "application/json",
                        &[],
                        body.as_bytes(),
                        true,
                    );
                }
                return;
            }
        };
        let close = request.wants_close() || state.stop.load(Ordering::SeqCst);
        let started = std::time::Instant::now();
        // Root span for the whole HTTP round; the trace id rides through
        // admission, the tenant queue, replay, and verdict emission.
        let trace = state.tracer.start();
        let root = trace.map(|t| state.tracer.begin(t, None, obs::Stage::Accept));
        let outcome = route(&request, &state, trace.zip(root.map(|r| r.span)), started);
        let ok = write_response(
            &mut writer,
            outcome.status,
            outcome.reason,
            outcome.content_type,
            &outcome
                .extra
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect::<Vec<_>>(),
            outcome.body.as_bytes(),
            close,
        )
        .is_ok();
        let dur_us = started.elapsed().as_micros() as u64;
        if let (Some(t), Some(open)) = (trace, root) {
            state.tracer.finish(open, None);
            if outcome.status >= 400 {
                state.tracer.force_keep(t);
            }
            state.tracer.complete(t);
        }
        access_log_line(&state, trace, &request, outcome.status, dur_us);
        if !ok || close {
            return;
        }
    }
}

/// One structured access-log line: epoch micros, correlated trace id (or
/// `null` when tracing is off), method, path, status, duration.
fn access_log_line(
    state: &State,
    trace: Option<obs::TraceId>,
    request: &Request,
    status: u16,
    dur_us: u64,
) {
    let Some(log) = &state.access_log else { return };
    let t_us = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let trace = match trace {
        Some(t) => format!("\"{t}\""),
        None => "null".to_string(),
    };
    let line = format!(
        "{{\"t_us\":{t_us},\"trace\":{trace},\"method\":{},\"path\":{},\"status\":{status},\"dur_us\":{dur_us}}}\n",
        escape(&request.method),
        escape(&request.path),
    );
    use std::io::Write as _;
    let mut file = log.lock().unwrap_or_else(|p| p.into_inner());
    let _ = file.write_all(line.as_bytes());
}

struct Outcome {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    extra: Vec<(String, String)>,
    body: String,
}

impl Outcome {
    fn json(status: u16, reason: &'static str, body: String) -> Outcome {
        Outcome {
            status,
            reason,
            content_type: "application/json",
            extra: Vec::new(),
            body,
        }
    }

    fn text(status: u16, reason: &'static str, body: String) -> Outcome {
        Outcome {
            status,
            reason,
            content_type: "text/plain; version=0.0.4",
            extra: Vec::new(),
            body,
        }
    }
}

fn error_body(message: &str) -> String {
    format!("{{ \"error\": {} }}\n", escape(message))
}

fn method_not_allowed(allow: &str) -> Outcome {
    let mut o = Outcome::json(405, "Method Not Allowed", error_body("method not allowed"));
    o.extra.push(("Allow".to_string(), allow.to_string()));
    o
}

fn not_found(what: &str) -> Outcome {
    Outcome::json(404, "Not Found", error_body(what))
}

fn route(
    request: &Request,
    state: &State,
    trace: Option<(obs::TraceId, obs::SpanId)>,
    started: std::time::Instant,
) -> Outcome {
    let path = request.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let outcome = match segments.as_slice() {
        ["healthz"] => match request.method.as_str() {
            "GET" => healthz(state),
            _ => method_not_allowed("GET"),
        },
        ["metrics"] => match request.method.as_str() {
            "GET" => metrics_prometheus(state),
            _ => method_not_allowed("GET"),
        },
        ["debug", "spans"] => match request.method.as_str() {
            "GET" => debug_spans(state),
            _ => method_not_allowed("GET"),
        },
        ["debug", "flight"] => match request.method.as_str() {
            "GET" => debug_flight(),
            _ => method_not_allowed("GET"),
        },
        ["admin", "checkpoint"] => match request.method.as_str() {
            "POST" => admin_checkpoint(state),
            _ => method_not_allowed("POST"),
        },
        ["v1", tenant, rest @ ..] => {
            let Some(tenant) = state.tenants.get(*tenant) else {
                return not_found("unknown tenant");
            };
            tenant.note_request();
            let outcome = match (request.method.as_str(), rest) {
                ("POST", ["entries"]) => submit_entries(tenant, request, trace),
                ("GET", ["entries"]) => method_not_allowed("POST"),
                ("GET", ["verdicts"]) => verdicts(tenant),
                ("GET", ["metrics"]) => Outcome::json(200, "OK", tenant.export_metrics().to_json()),
                ("GET", ["cases", id]) => case_verdict(tenant, id),
                (_, ["verdicts" | "metrics"]) | (_, ["cases", _]) => method_not_allowed("GET"),
                _ => not_found("no such resource"),
            };
            // The accept-stage histogram is tenant-scoped: request read +
            // routing + handling (response write excluded — the span, not
            // the histogram, carries the full round).
            tenant.registry.observe(
                "stage_latency_us_accept",
                started.elapsed().as_micros() as u64,
            );
            if outcome.status >= 400 {
                tenant.note_http_error();
            }
            return outcome;
        }
        _ => not_found("no such resource"),
    };
    outcome
}

/// `GET /debug/spans`: the most recent kept traces, newest last.
fn debug_spans(state: &State) -> Outcome {
    let trees = state.tracer.recent(RECENT_SPAN_LIMIT);
    let body = format!(
        "{{ \"enabled\": {}, \"traces\": [{}] }}\n",
        state.tracer.enabled(),
        trees
            .iter()
            .map(|t| t.to_json_line())
            .collect::<Vec<_>>()
            .join(", ")
    );
    Outcome::json(200, "OK", body)
}

/// Traces shown by `GET /debug/spans`.
const RECENT_SPAN_LIMIT: usize = 32;

/// `GET /debug/flight`: the flight-recorder ring as JSON lines — exactly
/// what a crash dump would contain right now.
fn debug_flight() -> Outcome {
    if !obs::flight::installed() {
        return Outcome::json(
            404,
            "Not Found",
            error_body("flight recorder not installed"),
        );
    }
    Outcome {
        status: 200,
        reason: "OK",
        content_type: "application/jsonl",
        extra: Vec::new(),
        body: obs::flight::dump_lines("debug endpoint"),
    }
}

fn healthz(state: &State) -> Outcome {
    let sick: Vec<&str> = state
        .tenants
        .iter()
        .filter(|(_, t)| t.worker_failed())
        .map(|(n, _)| n.as_str())
        .collect();
    let status = if sick.is_empty() { "ok" } else { "degraded" };
    let body = format!(
        "{{ \"status\": {}, \"tenants\": {}, \"failed\": [{}] }}\n",
        escape(status),
        state.tenants.len(),
        sick.iter()
            .map(|s| escape(s))
            .collect::<Vec<_>>()
            .join(", "),
    );
    Outcome::json(200, "OK", body)
}

fn metrics_prometheus(state: &State) -> Outcome {
    let pairs: Vec<(&str, &obs::Registry)> = state
        .tenants
        .iter()
        .map(|(name, tenant)| (name.as_str(), tenant.export_metrics()))
        .collect();
    Outcome::text(200, "OK", obs::prometheus_multi(&pairs))
}

fn admin_checkpoint(state: &State) -> Outcome {
    let Some(dir) = &state.checkpoint_dir else {
        return Outcome::json(
            409,
            "Conflict",
            error_body("no --checkpoint-dir configured"),
        );
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        return Outcome::json(500, "Internal Server Error", error_body(&e.to_string()));
    }
    let mut parts = Vec::new();
    for (name, tenant) in &state.tenants {
        let offset = tenant.stream_offset();
        let bytes = match tenant.handle.checkpoint(offset) {
            Ok(b) => b,
            Err(e) => {
                return Outcome::json(500, "Internal Server Error", error_body(&e.to_string()))
            }
        };
        let path = checkpoint_path(dir, name);
        if let Err(e) = atomic_write_sync(&path, &bytes, state.durability) {
            return Outcome::json(500, "Internal Server Error", error_body(&e.to_string()));
        }
        tenant.note_checkpoint();
        parts.push(format!(
            "{{ \"tenant\": {}, \"offset\": {offset}, \"bytes\": {} }}",
            escape(name),
            bytes.len()
        ));
    }
    Outcome::json(
        200,
        "OK",
        format!("{{ \"checkpointed\": [{}] }}\n", parts.join(", ")),
    )
}

fn submit_entries(
    tenant: &Tenant,
    request: &Request,
    trace: Option<(obs::TraceId, obs::SpanId)>,
) -> Outcome {
    let body = match std::str::from_utf8(&request.body) {
        Ok(s) => s,
        Err(_) => return Outcome::json(400, "Bad Request", error_body("body is not UTF-8")),
    };
    // Admission stage: salvage parse + watermark check + enqueue.
    let admission_span =
        trace.map(|(t, root)| tenant.tracer.begin(t, Some(root), obs::Stage::Admission));
    let admission_start = std::time::Instant::now();
    let admission = tenant.submit(body, trace);
    tenant.registry.observe(
        "stage_latency_us_admission",
        admission_start.elapsed().as_micros() as u64,
    );
    if let Some(span) = admission_span {
        tenant.tracer.finish(span, None);
    }
    match admission {
        Admission::Accepted {
            accepted,
            quarantined,
            queued,
        } => Outcome::json(
            202,
            "Accepted",
            format!(
                "{{ \"tenant\": {}, \"accepted\": {accepted}, \"quarantined\": {quarantined}, \"queued\": {queued} }}\n",
                escape(&tenant.name)
            ),
        ),
        Admission::Backpressure { queued, watermark } => {
            let mut o = Outcome::json(
                429,
                "Too Many Requests",
                format!(
                    "{{ \"error\": \"backpressure\", \"queued\": {queued}, \"watermark\": {watermark} }}\n"
                ),
            );
            o.extra.push(("Retry-After".to_string(), "1".to_string()));
            o
        }
    }
}

/// The canonical verdict label — the exact strings the batch auditor's
/// outcomes map to in the equivalence suites, so a served verdict can be
/// compared byte-for-byte against `audit_parallel`.
pub fn verdict_label(handle: &MonitorHandle, case: cows::symbol::Symbol) -> Option<String> {
    let check = match handle.snapshot(case)? {
        Ok(check) => check,
        Err(e) => return Some(format!("unresolved: {e}")),
    };
    Some(match check.verdict {
        Verdict::Compliant { can_complete } => format!("compliant complete={can_complete}"),
        Verdict::Infringement(inf) => {
            let severity = handle
                .closed_case(case)
                .map(|c| c.severity.score)
                .unwrap_or(0.0);
            format!("infringement@{} severity={severity:.4}", inf.entry_index)
        }
    })
}

fn case_verdict(tenant: &Tenant, id: &str) -> Outcome {
    let case = cows::sym(id);
    let Some(label) = verdict_label(&tenant.handle, case) else {
        return not_found("unknown case");
    };
    let closed = tenant.handle.closed_case(case);
    let (status, after_alarm, severity, evidence) = match &closed {
        Some(c) => {
            let expected = c
                .infringement
                .expected
                .iter()
                .map(|s| escape(s))
                .collect::<Vec<_>>()
                .join(", ");
            (
                "alarmed",
                c.after_alarm,
                format!("{:.4}", c.severity.score),
                format!(
                    ", \"entry_index\": {}, \"expected\": [{expected}]",
                    c.infringement.entry_index
                ),
            )
        }
        None => ("open", 0, "null".to_string(), String::new()),
    };
    Outcome::json(
        200,
        "OK",
        format!(
            "{{ \"case\": {}, \"status\": {}, \"verdict\": {}, \"severity\": {severity}, \"after_alarm\": {after_alarm}{evidence} }}\n",
            escape(id),
            escape(status),
            escape(&label),
        ),
    )
}

fn verdicts(tenant: &Tenant) -> Outcome {
    let alarmed = tenant.handle.alarmed_cases();
    let c = tenant.counters();
    let names = alarmed
        .iter()
        .map(|s| escape(s.as_str()))
        .collect::<Vec<_>>()
        .join(", ");
    Outcome::json(
        200,
        "OK",
        format!(
            "{{ \"tenant\": {}, \"open\": {}, \"tracked\": {}, \"alarmed\": [{names}], \"audited\": {}, \"queued\": {} }}\n",
            escape(&tenant.name),
            tenant.handle.open_cases(),
            tenant.handle.tracked_cases(),
            tenant.stream_offset(),
            c.queued_entries,
        ),
    )
}

// ---------------------------------------------------------------------------
// Minimal HTTP client (tests, bench, smoke tooling — not production code)
// ---------------------------------------------------------------------------

/// A blocking one-request-per-call HTTP client over std TCP, shared by the
/// protocol test battery, the e2e harness and the P14 bench driver so none
/// of them grow their own socket code.
pub mod client {
    use std::io::{BufReader, Write};
    use std::net::TcpStream;

    /// A parsed response: status code, headers, body.
    #[derive(Debug)]
    pub struct Response {
        pub status: u16,
        pub headers: Vec<(String, String)>,
        pub body: String,
    }

    impl Response {
        pub fn header(&self, name: &str) -> Option<&str> {
            self.headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        }
    }

    /// Send one request and read the full response (Content-Length framed).
    pub fn request(addr: &str, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        let mut stream = TcpStream::connect(addr)?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        read_response(&mut BufReader::new(stream))
    }

    /// Send raw bytes verbatim (malformed-request conformance tests) and
    /// read whatever comes back.
    pub fn raw(addr: &str, bytes: &[u8]) -> std::io::Result<Response> {
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(bytes)?;
        stream.flush()?;
        let _ = stream.shutdown(std::net::Shutdown::Write);
        read_response(&mut BufReader::new(stream))
    }

    fn read_response(reader: &mut impl std::io::BufRead) -> std::io::Result<Response> {
        let mut status_line = String::new();
        reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line: {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim().to_string();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().unwrap_or(0);
                }
                headers.push((name.to_string(), value));
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        Ok(Response {
            status,
            headers,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    /// The slow-loris guard: a client that sends half a request line and
    /// then stalls must get a 408 when the io deadline expires — not pin
    /// the connection thread forever, not be dropped without a status.
    #[test]
    fn half_open_connection_gets_408_not_a_hung_worker() {
        let config = ServeConfig {
            limits: Limits {
                io_timeout: Duration::from_millis(200),
                ..Limits::default()
            },
            ..ServeConfig::default()
        };
        let server = Server::start(Vec::new(), config).unwrap();
        let addr = server.addr();

        let started = std::time::Instant::now();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Half a request line, no terminator — then silence.
        stream.write_all(b"GET /hea").unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        // Bound the client read too, so a regression hangs the test with
        // a clear timeout instead of forever.
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 408 Request Timeout"),
            "got: {response:?}"
        );
        assert!(
            started.elapsed() >= Duration::from_millis(200),
            "the 408 must come from the deadline, not an instant refusal"
        );
        server.shutdown().unwrap();
    }

    /// An intact request against the same tiny deadline still succeeds —
    /// the timeout punishes stalling, not ordinary clients.
    #[test]
    fn prompt_requests_are_unaffected_by_the_io_deadline() {
        let config = ServeConfig {
            limits: Limits {
                io_timeout: Duration::from_millis(200),
                ..Limits::default()
            },
            ..ServeConfig::default()
        };
        let server = Server::start(Vec::new(), config).unwrap();
        let addr = server.addr().to_string();
        let response = client::request(&addr, "GET", "/healthz", "").unwrap();
        assert_eq!(response.status, 200);
        server.shutdown().unwrap();
    }
}
