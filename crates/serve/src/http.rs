//! A hand-rolled HTTP/1.1 subset over std TCP — just enough protocol for
//! the audit service, with hard limits enforced *during* parsing.
//!
//! No external dependency is available in this workspace (see
//! `vendor/README.md`), so the wire layer is written against the RFC 9112
//! subset the service actually needs: request line + headers, bodies
//! framed by `Content-Length` or `Transfer-Encoding: chunked`, keep-alive
//! by default. Everything a hostile or broken client can send maps to a
//! *typed* [`HttpError`] rather than a panic or an unbounded allocation:
//! header blocks over the limit are `431`, bodies over the limit are `413`
//! (detected from the declared length *before* reading, and re-checked
//! while streaming chunked bodies), and any framing violation — torn
//! request line, non-numeric length, truncated chunk — is a `400` that
//! also poisons the connection (framing is unrecoverable mid-stream).
//! A connection that stalls mid-request — the slow-loris pattern: open a
//! socket, dribble half a request line, hold — trips the socket's
//! read/write deadline ([`Limits::io_timeout`]) and is answered `408`.

use std::io::{BufRead, Write};
use std::time::Duration;

/// Parsing limits. Defaults are generous for trail batches but bounded:
/// a client cannot make the server buffer more than `max_body_bytes` or
/// hold a worker longer than `io_timeout` per socket operation.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    pub max_header_bytes: usize,
    pub max_body_bytes: usize,
    /// Per-operation socket deadline, applied to both reads and writes
    /// (`--io-timeout`). A stalled request line gets a `408` when it
    /// expires.
    pub io_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close after this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read. [`HttpError::status`] maps each typed
/// cause onto the response the server must send before (for framing
/// errors) dropping the connection.
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF between requests — the client hung up; not an error.
    Closed,
    /// Malformed framing: bad request line, bad header, bad chunk.
    Malformed(&'static str),
    /// Header block exceeded [`Limits::max_header_bytes`].
    HeadersTooLarge,
    /// Declared or streamed body exceeded [`Limits::max_body_bytes`].
    BodyTooLarge,
    /// The socket deadline ([`Limits::io_timeout`]) expired mid-request —
    /// the slow-loris guard.
    TimedOut,
    /// Transport failure mid-request.
    Io(std::io::Error),
}

impl HttpError {
    /// The status code owed to the client, if any (`Closed`/`Io` get none).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge => Some((413, "Content Too Large")),
            HttpError::TimedOut => Some((408, "Request Timeout")),
            HttpError::Closed | HttpError::Io(_) => None,
        }
    }
}

/// Lift a transport error, separating "the deadline expired" (a typed
/// `408`) from genuine transport failure. Timeouts surface as `WouldBlock`
/// or `TimedOut` depending on platform; both mean the peer stalled.
fn classify_io(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => HttpError::TimedOut,
        _ => HttpError::Io(e),
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::HeadersTooLarge => write!(f, "header block too large"),
            HttpError::BodyTooLarge => write!(f, "body too large"),
            HttpError::TimedOut => write!(f, "request stalled past the io timeout"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Read one line (through CRLF or bare LF), bounded by `budget` bytes.
/// Consumes the terminator; returns the line without it.
fn read_line_bounded(
    reader: &mut impl BufRead,
    budget: &mut usize,
    over: HttpError,
) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(HttpError::Closed);
                }
                return Err(HttpError::Malformed("truncated line"));
            }
            Ok(_) => {}
            Err(e) => return Err(classify_io(e)),
        }
        if *budget == 0 {
            return Err(over);
        }
        *budget -= 1;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes"));
        }
        line.push(byte[0]);
    }
}

fn read_exact_body(
    reader: &mut impl BufRead,
    len: usize,
    limits: &Limits,
) -> Result<Vec<u8>, HttpError> {
    if len > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(|e| match e.kind() {
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => HttpError::TimedOut,
        _ => HttpError::Malformed("body shorter than Content-Length"),
    })?;
    Ok(body)
}

fn read_chunked_body(reader: &mut impl BufRead, limits: &Limits) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        // Chunk-size lines are tiny; bound them independently of the
        // header budget so a runaway size line cannot buffer unbounded.
        let mut budget = 128usize;
        let size_line =
            read_line_bounded(reader, &mut budget, HttpError::Malformed("chunk size line"))
                .map_err(|e| match e {
                    HttpError::Closed => HttpError::Malformed("truncated chunked body"),
                    other => other,
                })?;
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| HttpError::Malformed("bad chunk size"))?;
        if size == 0 {
            // Trailer section: consume lines through the blank terminator.
            loop {
                let mut budget = 1024usize;
                let line = read_line_bounded(
                    reader,
                    &mut budget,
                    HttpError::Malformed("oversized trailer"),
                )
                .map_err(|e| match e {
                    HttpError::Closed => HttpError::Malformed("truncated chunk trailer"),
                    other => other,
                })?;
                if line.is_empty() {
                    return Ok(body);
                }
            }
        }
        if body.len() + size > limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge);
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader
            .read_exact(&mut body[start..])
            .map_err(|e| match e.kind() {
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                    HttpError::TimedOut
                }
                _ => HttpError::Malformed("truncated chunk data"),
            })?;
        let mut crlf = [0u8; 2];
        reader
            .read_exact(&mut crlf)
            .map_err(|_| HttpError::Malformed("missing chunk terminator"))?;
        if &crlf != b"\r\n" {
            return Err(HttpError::Malformed("missing chunk terminator"));
        }
    }
}

/// Read one full request off the wire, or a typed refusal.
pub fn read_request(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, HttpError> {
    let mut budget = limits.max_header_bytes;
    let request_line = read_line_bounded(reader, &mut budget, HttpError::HeadersTooLarge)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.chars().all(|c| c.is_ascii_uppercase()))
        .ok_or(HttpError::Malformed("bad method"))?
        .to_string();
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or(HttpError::Malformed("bad request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") || parts.next().is_some() {
        return Err(HttpError::Malformed("bad HTTP version"));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_line_bounded(reader, &mut budget, HttpError::HeadersTooLarge).map_err(
            |e| match e {
                HttpError::Closed => HttpError::Malformed("truncated header block"),
                other => other,
            },
        )?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("bad header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    let chunked = request
        .header("transfer-encoding")
        .is_some_and(|v| v.to_ascii_lowercase().contains("chunked"));
    let body = if chunked {
        read_chunked_body(reader, limits)?
    } else if let Some(len) = request.header("content-length") {
        let len: usize = len
            .trim()
            .parse()
            .map_err(|_| HttpError::Malformed("bad Content-Length"))?;
        read_exact_body(reader, len, limits)?
    } else {
        Vec::new()
    };
    Ok(Request { body, ..request })
}

/// Write one response. `extra_headers` ride along verbatim (e.g.
/// `Retry-After`); `Content-Length` and `Connection` are always set.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
    head.push_str(&format!("Content-Type: {content_type}\r\n"));
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_request_with_content_length() {
        let req =
            parse(b"POST /v1/t/entries HTTP/1.1\r\nContent-Length: 5\r\nHost: x\r\n\r\nhello")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/t/entries");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_chunked_body() {
        let req = parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n")
            .unwrap();
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn truncated_chunk_is_malformed_not_hang() {
        let err = parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n10\r\nonly-part")
            .unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err:?}");
        assert_eq!(err.status(), Some((400, "Bad Request")));
    }

    #[test]
    fn oversized_declared_body_refused_without_reading() {
        let limits = Limits {
            max_body_bytes: 10,
            ..Limits::default()
        };
        let bytes: &[u8] = b"POST /x HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
        let err = read_request(&mut BufReader::new(bytes), &limits).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge));
        assert_eq!(err.status(), Some((413, "Content Too Large")));
    }

    #[test]
    fn oversized_chunked_body_refused_while_streaming() {
        let limits = Limits {
            max_body_bytes: 8,
            ..Limits::default()
        };
        let bytes: &[u8] =
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n9\r\nwaytoobig\r\n0\r\n\r\n";
        let err = read_request(&mut BufReader::new(bytes), &limits).unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge));
    }

    #[test]
    fn header_block_over_limit_is_431() {
        let limits = Limits {
            max_header_bytes: 64,
            ..Limits::default()
        };
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Big: {}\r\n\r\n", "a".repeat(100)).as_bytes());
        let err = read_request(&mut BufReader::new(raw.as_slice()), &limits).unwrap_err();
        assert!(matches!(err, HttpError::HeadersTooLarge));
        assert_eq!(err.status(), Some((431, "Request Header Fields Too Large")));
    }

    #[test]
    fn garbage_request_line_is_malformed() {
        for raw in [
            &b"not-http\r\n\r\n"[..],
            &b"GET\r\n\r\n"[..],
            &b"GET / HTTP/2.0 extra\r\n\r\n"[..],
            &b"get / HTTP/1.1\r\n\r\n"[..],
        ] {
            let err = parse(raw).unwrap_err();
            assert!(matches!(err, HttpError::Malformed(_)), "{raw:?}");
        }
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse(b"").unwrap_err(), HttpError::Closed));
    }

    #[test]
    fn response_carries_length_and_extra_headers() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "Too Many Requests",
            "application/json",
            &[("Retry-After", "1")],
            b"{}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
