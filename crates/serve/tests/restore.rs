//! Checkpoint-restore edge cases for the serving layer: a changed tenant
//! set, corrupt or incompatible checkpoint files, and the guarantee that
//! restoring never resurrects a retired (alarmed) case. Every failure
//! path must be fail-open — a typed [`RestoreIssue`] plus a cold start,
//! never a panic and never a refusal to boot.

use audit::samples::figure4_trail;
use bpmn::models::{clinical_trial, healthcare_treatment};
use cows::sym;
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};
use proptest::prelude::*;
use purpose_control::auditor::{Auditor, ProcessRegistry};
use purpose_control::{LiveConfig, ShardedMonitor};
use serve::tenant::{checkpoint_path, orphan_checkpoints, restore_tenant, RestoreIssue};
use std::path::PathBuf;

fn hospital_auditor() -> Auditor {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    Auditor::new(registry, extended_hospital_policy(), hospital_context())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("purposectl-tests")
        .join(format!("restore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A real checkpoint: the Fig. 4 trail ingested through `shards` shards.
fn checkpoint_bytes(shards: usize) -> Vec<u8> {
    let trail = figure4_trail();
    let mut monitor = ShardedMonitor::new(hospital_auditor(), &LiveConfig::default(), shards);
    monitor.ingest(trail.entries()).unwrap();
    monitor.checkpoint(trail.len() as u64).unwrap()
}

#[test]
fn orphan_checkpoint_for_removed_tenant_is_reported_not_fatal() {
    let dir = scratch("orphan");
    std::fs::write(checkpoint_path(&dir, "retired-tenant"), b"stale").unwrap();
    std::fs::write(checkpoint_path(&dir, "kept"), checkpoint_bytes(2)).unwrap();

    let issues = orphan_checkpoints(&dir, &["kept"]);
    assert_eq!(issues.len(), 1);
    assert!(
        matches!(&issues[0], RestoreIssue::OrphanCheckpoint { tenant } if tenant == "retired-tenant"),
        "wrong issue: {:?}",
        issues[0]
    );

    // The configured tenant still restores warm.
    let (monitor, offset, issue) = restore_tenant(
        Some(&dir),
        "kept",
        hospital_auditor(),
        &LiveConfig::default(),
        2,
    );
    assert!(issue.is_none(), "unexpected issue: {issue:?}");
    assert_eq!(offset, figure4_trail().len() as u64);
    assert!(monitor.tracked_cases() > 0);
}

#[test]
fn added_tenant_with_no_checkpoint_starts_cold_without_issue() {
    let dir = scratch("added");
    let (monitor, offset, issue) = restore_tenant(
        Some(&dir),
        "brand-new",
        hospital_auditor(),
        &LiveConfig::default(),
        2,
    );
    assert!(issue.is_none());
    assert_eq!(offset, 0);
    assert_eq!(monitor.tracked_cases(), 0);
}

#[test]
fn corrupt_checkpoint_fails_open_with_typed_error() {
    let dir = scratch("corrupt");
    std::fs::write(
        checkpoint_path(&dir, "north"),
        b"definitely not a checkpoint",
    )
    .unwrap();

    let (monitor, offset, issue) = restore_tenant(
        Some(&dir),
        "north",
        hospital_auditor(),
        &LiveConfig::default(),
        2,
    );
    assert!(
        matches!(&issue, Some(RestoreIssue::Incompatible { tenant, .. }) if tenant == "north"),
        "wrong issue: {issue:?}"
    );
    assert_eq!(offset, 0, "corrupt restore must cold-start at offset 0");
    assert_eq!(monitor.tracked_cases(), 0);
}

#[test]
fn every_truncation_of_a_real_checkpoint_fails_open() {
    let dir = scratch("truncate");
    let bytes = checkpoint_bytes(2);
    // Probe a spread of truncation points (all of them is slow in CI).
    for len in (0..bytes.len()).step_by(97.max(bytes.len() / 64)) {
        std::fs::write(checkpoint_path(&dir, "t"), &bytes[..len]).unwrap();
        let (monitor, offset, issue) = restore_tenant(
            Some(&dir),
            "t",
            hospital_auditor(),
            &LiveConfig::default(),
            2,
        );
        assert!(
            issue.is_some(),
            "truncation at {len} bytes was not detected"
        );
        assert_eq!(offset, 0);
        assert_eq!(monitor.tracked_cases(), 0);
    }
}

#[test]
fn shard_count_mismatch_fails_open() {
    let dir = scratch("shards");
    std::fs::write(checkpoint_path(&dir, "north"), checkpoint_bytes(4)).unwrap();

    let (monitor, offset, issue) = restore_tenant(
        Some(&dir),
        "north",
        hospital_auditor(),
        &LiveConfig::default(),
        2, // checkpoint was written with 4
    );
    match &issue {
        Some(RestoreIssue::Incompatible { tenant, reason }) => {
            assert_eq!(tenant, "north");
            assert!(
                reason.contains("shard"),
                "reason should name the shard mismatch: {reason}"
            );
        }
        other => panic!("expected Incompatible, got {other:?}"),
    }
    assert_eq!(offset, 0);
    assert_eq!(monitor.tracked_cases(), 0);
}

#[test]
fn version_bump_fails_open() {
    let dir = scratch("version");
    let mut bytes = checkpoint_bytes(2);
    bytes[4] = 99; // envelope format version byte
    std::fs::write(checkpoint_path(&dir, "north"), bytes).unwrap();

    let (_, offset, issue) = restore_tenant(
        Some(&dir),
        "north",
        hospital_auditor(),
        &LiveConfig::default(),
        2,
    );
    assert!(
        matches!(&issue, Some(RestoreIssue::Incompatible { .. })),
        "wrong issue: {issue:?}"
    );
    assert_eq!(offset, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Restoring a checkpoint never resurrects a retired case: every case
    /// alarmed at checkpoint time is still alarmed after restore (same
    /// infringement position), stays closed when more of its entries
    /// arrive, and the restored monitor reaches the same final alarm set
    /// as one that never restarted — for any split point and shard count.
    #[test]
    fn restore_never_resurrects_retired_cases(
        split in 1usize..46,
        shards in 1usize..5,
    ) {
        let trail = figure4_trail();
        let entries = trail.entries();
        let split = split.min(entries.len());

        let mut first = ShardedMonitor::new(hospital_auditor(), &LiveConfig::default(), shards);
        first.ingest(&entries[..split]).unwrap();
        let alarmed_then: Vec<_> = first.alarms().iter().map(|(c, _)| *c).collect();
        let bytes = first.checkpoint(split as u64).unwrap();

        let (mut restored, offset) =
            ShardedMonitor::restore(hospital_auditor(), &LiveConfig::default(), shards, &bytes)
                .unwrap();
        prop_assert_eq!(offset, split as u64);

        // Every retired case is still retired, with the identical record.
        for case in &alarmed_then {
            let before = first.closed_case(*case).expect("closed before checkpoint");
            let after = restored.closed_case(*case).expect("resurrected by restore");
            prop_assert_eq!(
                before.infringement.entry_index,
                after.infringement.entry_index
            );
            prop_assert_eq!(&before.subjects, &after.subjects);
        }

        // Deliver the rest of the stream; retired cases must absorb, not
        // reopen, and the final alarm set matches an unbroken run.
        restored.ingest(&entries[split..]).unwrap();
        let mut unbroken = ShardedMonitor::new(hospital_auditor(), &LiveConfig::default(), shards);
        unbroken.ingest(entries).unwrap();

        let mut resumed_alarms: Vec<_> = restored.alarms().iter().map(|(c, _)| *c).collect();
        let mut unbroken_alarms: Vec<_> = unbroken.alarms().iter().map(|(c, _)| *c).collect();
        resumed_alarms.sort();
        unbroken_alarms.sort();
        prop_assert_eq!(&resumed_alarms, &unbroken_alarms);
        for case in &alarmed_then {
            prop_assert!(
                resumed_alarms.contains(case),
                "case {} was resurrected after restore",
                case
            );
        }

        // The misuse case from Fig. 4 ends alarmed in every full run.
        prop_assert!(resumed_alarms.contains(&sym("HT-11")));
    }
}
