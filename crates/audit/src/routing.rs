//! Stable case routing keys.
//!
//! Every component that partitions a trail by case — the sharded live
//! monitor behind `purposectl watch`, the per-tenant ingest path of
//! `purposectl serve`, checkpoint restore — must agree on where a case
//! lands, across runs *and* across processes. They all derive the
//! partition from one function: [`case_key`], FNV-1a over the case name
//! via the same length-prefixed [`StableHasher`] the snapshot formats use
//! (no `DefaultHasher` seeding, so a checkpoint written by one process
//! routes identically in the next).
//!
//! Before this module, the tail reader's consumer and the serve ingest
//! path each re-derived the hash inline; a drift between them would have
//! silently routed a resumed case to the wrong shard. Now there is exactly
//! one derivation to pin with tests.

use cows::StableHasher;

/// The stable routing key of a case name. Identical for the same string
/// in every run, process, and crate that links this function.
pub fn case_key(case: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(case);
    h.finish()
}

/// Reduce a routing key onto `n` partitions (shards, tenants, workers).
/// `n = 0` is treated as one partition so the reduction is total.
pub fn partition_of(key: u64, n: usize) -> usize {
    (key % n.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_stable_across_calls() {
        for case in ["HT-1", "CT-930", "ORD-17", ""] {
            assert_eq!(case_key(case), case_key(case));
        }
    }

    #[test]
    fn key_separates_length_prefixed() {
        // The length prefix keeps concatenation ambiguity out of the key
        // space (same guarantee StableHasher::write_str documents).
        assert_ne!(case_key("HT-1"), case_key("HT-11"));
        assert_ne!(case_key("AB"), case_key("A"));
    }

    #[test]
    fn partition_is_total_and_in_range() {
        for n in [0usize, 1, 2, 3, 8, 1024] {
            for case in ["HT-1", "HT-2", "CT-1"] {
                let p = partition_of(case_key(case), n);
                assert!(p < n.max(1));
            }
        }
    }
}
