//! Descriptive statistics over audit trails.
//!
//! Before replaying anything, an auditor needs to size the job: how many
//! cases, which users and roles are active, how the day distributes over
//! objects — §1's "more than 20,000 records are opened every day" as a
//! first-class query. All statistics are single-pass.

use crate::entry::TaskStatus;
use crate::time::Timestamp;
use crate::trail::AuditTrail;
use cows::symbol::Symbol;
use std::collections::HashMap;
use std::fmt;

/// Aggregate statistics of one trail.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrailStats {
    pub entries: usize,
    pub cases: usize,
    pub users: usize,
    pub failures: usize,
    /// Entries without an object (pure task events).
    pub objectless: usize,
    pub first: Option<Timestamp>,
    pub last: Option<Timestamp>,
    /// Entries per role, sorted descending.
    pub by_role: Vec<(Symbol, usize)>,
    /// Entries per task, sorted descending.
    pub by_task: Vec<(Symbol, usize)>,
    /// Entries per data subject, sorted descending (objectless and
    /// subject-less objects excluded).
    pub by_subject: Vec<(Symbol, usize)>,
    /// Case sizes: (min, median, max) entries per case.
    pub case_size_min: usize,
    pub case_size_median: usize,
    pub case_size_max: usize,
}

impl TrailStats {
    /// Span of the trail in minutes (0 for empty or single-instant trails).
    pub fn span_minutes(&self) -> u64 {
        match (self.first, self.last) {
            (Some(a), Some(b)) => b.0.saturating_sub(a.0),
            _ => 0,
        }
    }

    /// Export the trail's shape into a metrics registry (gauges — these
    /// are levels of the audited input, not flows).
    pub fn export_into(&self, registry: &obs::Registry) {
        registry.set_gauge("trail_entries", self.entries as f64);
        registry.set_gauge("trail_cases", self.cases as f64);
        registry.set_gauge("trail_users", self.users as f64);
        registry.set_gauge("trail_failures", self.failures as f64);
        registry.set_gauge("trail_span_minutes", self.span_minutes() as f64);
    }
}

fn sorted_counts(map: HashMap<Symbol, usize>) -> Vec<(Symbol, usize)> {
    let mut v: Vec<(Symbol, usize)> = map.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Compute statistics for `trail`.
pub fn trail_stats(trail: &AuditTrail) -> TrailStats {
    let mut by_role: HashMap<Symbol, usize> = HashMap::new();
    let mut by_task: HashMap<Symbol, usize> = HashMap::new();
    let mut by_subject: HashMap<Symbol, usize> = HashMap::new();
    let mut by_case: HashMap<Symbol, usize> = HashMap::new();
    let mut users: HashMap<Symbol, ()> = HashMap::new();
    let mut failures = 0usize;
    let mut objectless = 0usize;

    for e in trail {
        *by_role.entry(e.role).or_default() += 1;
        *by_task.entry(e.task).or_default() += 1;
        *by_case.entry(e.case).or_default() += 1;
        users.insert(e.user, ());
        if e.status == TaskStatus::Failure {
            failures += 1;
        }
        match &e.object {
            None => objectless += 1,
            Some(o) => {
                if let Some(subj) = o.subject {
                    *by_subject.entry(subj).or_default() += 1;
                }
            }
        }
    }

    let mut case_sizes: Vec<usize> = by_case.values().copied().collect();
    case_sizes.sort_unstable();
    let (case_size_min, case_size_median, case_size_max) = match case_sizes.as_slice() {
        [] => (0, 0, 0),
        sizes => (sizes[0], sizes[sizes.len() / 2], sizes[sizes.len() - 1]),
    };

    TrailStats {
        entries: trail.len(),
        cases: by_case.len(),
        users: users.len(),
        failures,
        objectless,
        first: trail.entries().first().map(|e| e.time),
        last: trail.entries().last().map(|e| e.time),
        by_role: sorted_counts(by_role),
        by_task: sorted_counts(by_task),
        by_subject: sorted_counts(by_subject),
        case_size_min,
        case_size_median,
        case_size_max,
    }
}

impl fmt::Display for TrailStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} entries, {} cases (size {}/{}/{} min/med/max), {} users, {} failures, {} objectless",
            self.entries,
            self.cases,
            self.case_size_min,
            self.case_size_median,
            self.case_size_max,
            self.users,
            self.failures,
            self.objectless
        )?;
        if let (Some(a), Some(b)) = (self.first, self.last) {
            writeln!(f, "span: {a} .. {b} ({} minutes)", self.span_minutes())?;
        }
        let top = |f: &mut fmt::Formatter<'_>, label: &str, v: &[(Symbol, usize)]| {
            write!(f, "{label}:")?;
            for (sym, n) in v.iter().take(8) {
                write!(f, " {sym}={n}")?;
            }
            writeln!(f)
        };
        top(f, "by role", &self.by_role)?;
        top(f, "by task", &self.by_task)?;
        top(f, "by subject", &self.by_subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::figure4_trail;
    use cows::sym;

    #[test]
    fn fig4_statistics() {
        let s = trail_stats(&figure4_trail());
        assert_eq!(s.entries, 28);
        assert_eq!(s.cases, 8);
        assert_eq!(s.users, 3); // John, Bob, Charlie
        assert_eq!(s.failures, 1); // the T02 cancel
        assert_eq!(s.objectless, 1); // same entry
                                     // Bob dominates the trail (the sweep).
        assert_eq!(s.by_role[0].0, sym("Cardiologist"));
        // Jane is the most-touched subject.
        assert_eq!(s.by_subject[0].0, sym("Jane"));
        assert_eq!(s.case_size_max, 16); // HT-1
        assert_eq!(s.case_size_min, 1); // the sweep singletons
        assert!(s.span_minutes() > 0);
    }

    #[test]
    fn empty_trail_statistics() {
        let s = trail_stats(&AuditTrail::new());
        assert_eq!(s.entries, 0);
        assert_eq!(s.span_minutes(), 0);
        assert_eq!(s.case_size_median, 0);
    }

    #[test]
    fn display_is_reasonable() {
        let text = trail_stats(&figure4_trail()).to_string();
        assert!(text.contains("28 entries"));
        assert!(text.contains("by role:"));
        assert!(text.contains("Jane="));
    }
}
