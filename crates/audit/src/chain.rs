//! Hash-chained trail integrity.
//!
//! §3.4: "audit trails need to be protected from breaches of their
//! integrity … there exist well-established techniques \[18,19\]". This
//! module simulates those techniques with a forward hash chain: each entry
//! is digested together with the digest of its predecessor, so any
//! modification, insertion, deletion or reordering of committed entries
//! invalidates every subsequent link.
//!
//! The digest is 64-bit FNV-1a — a *simulation* of \[18,19\]'s cryptographic
//! MACs that exercises the same tamper-evidence interface without a crypto
//! dependency (see `DESIGN.md` §5). It is not collision-resistant against
//! an adversary and must not be used as a real security mechanism.

use crate::entry::LogEntry;
use crate::trail::AuditTrail;
use serde::{Deserialize, Serialize};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn entry_digest(prev: u64, entry: &LogEntry) -> u64 {
    // The rendered form is canonical for an entry (Display is injective on
    // the Def. 4 fields), so digesting it binds every field.
    let rendered = entry.to_string();
    let mut h = fnv1a(FNV_OFFSET, &prev.to_le_bytes());
    h = fnv1a(h, rendered.as_bytes());
    h
}

/// A trail with a digest chain committed over its entries.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChainedTrail {
    trail: AuditTrail,
    digests: Vec<u64>,
}

/// Where verification found the chain broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityViolation {
    /// Index of the first entry whose digest no longer matches.
    pub first_bad_index: usize,
}

impl std::fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "audit-trail integrity violated at entry {}",
            self.first_bad_index
        )
    }
}

impl std::error::Error for IntegrityViolation {}

impl ChainedTrail {
    pub fn new() -> ChainedTrail {
        ChainedTrail::default()
    }

    /// Commit an existing trail (e.g. right after collection).
    pub fn commit(trail: AuditTrail) -> ChainedTrail {
        let mut digests = Vec::with_capacity(trail.len());
        let mut prev = 0u64;
        for e in &trail {
            prev = entry_digest(prev, e);
            digests.push(prev);
        }
        ChainedTrail { trail, digests }
    }

    /// Append a new entry at the head of the chain. The entry must not be
    /// older than the last committed one (committed history is immutable).
    pub fn append(&mut self, entry: LogEntry) -> Result<(), LogEntry> {
        if let Some(last) = self.trail.entries().last() {
            if entry.time < last.time {
                return Err(entry);
            }
        }
        let prev = self.digests.last().copied().unwrap_or(0);
        self.digests.push(entry_digest(prev, &entry));
        self.trail.push(entry);
        Ok(())
    }

    pub fn trail(&self) -> &AuditTrail {
        &self.trail
    }

    /// The digest covering the whole trail so far (to be escrowed with a
    /// trusted party, per \[19\]).
    pub fn head_digest(&self) -> u64 {
        self.digests.last().copied().unwrap_or(0)
    }

    /// Re-derive the chain and compare: detects any in-place tampering.
    pub fn verify(&self) -> Result<(), IntegrityViolation> {
        let prefix = self.verified_prefix_len();
        if prefix == self.trail.len() && self.digests.len() == self.trail.len() {
            Ok(())
        } else {
            Err(IntegrityViolation {
                first_bad_index: prefix,
            })
        }
    }

    /// Length of the longest prefix still covered by matching digests.
    ///
    /// Equals `trail().len()` iff [`verify`](ChainedTrail::verify) passes.
    /// Everything before this index is exactly what was committed (any
    /// modification, insertion, deletion or reordering re-keys every later
    /// digest); everything from it onward is untrustworthy and is what
    /// [`crate::salvage::salvage_chained`] quarantines.
    pub fn verified_prefix_len(&self) -> usize {
        let mut prev = 0u64;
        for (i, e) in self.trail.iter().enumerate() {
            prev = entry_digest(prev, e);
            if self.digests.get(i) != Some(&prev) {
                return i;
            }
        }
        self.trail.len().min(self.digests.len())
    }

    /// Test-and-audit helper: expose the trail mutably *without* updating
    /// digests, simulating an attacker with storage access.
    #[doc(hidden)]
    pub fn tamper(&mut self) -> &mut AuditTrail {
        &mut self.trail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use policy::object::ObjectId;
    use policy::statement::Action;

    fn entry(task: &str, minute: u64) -> LogEntry {
        LogEntry::success(
            "John",
            "GP",
            Action::Read,
            Some(ObjectId::of_subject("Jane", "EPR/Clinical")),
            task,
            "HT-1",
            Timestamp(minute),
        )
    }

    #[test]
    fn committed_trail_verifies() {
        let t = AuditTrail::from_entries(vec![entry("A", 1), entry("B", 2)]);
        let c = ChainedTrail::commit(t);
        assert!(c.verify().is_ok());
        assert_ne!(c.head_digest(), 0);
    }

    #[test]
    fn append_extends_chain() {
        let mut c = ChainedTrail::new();
        c.append(entry("A", 1)).unwrap();
        let h1 = c.head_digest();
        c.append(entry("B", 2)).unwrap();
        assert_ne!(c.head_digest(), h1);
        assert!(c.verify().is_ok());
    }

    #[test]
    fn backdated_append_rejected() {
        let mut c = ChainedTrail::new();
        c.append(entry("A", 10)).unwrap();
        assert!(c.append(entry("B", 5)).is_err());
    }

    #[test]
    fn in_place_edit_detected() {
        let mut c = ChainedTrail::commit(AuditTrail::from_entries(vec![
            entry("A", 1),
            entry("B", 2),
            entry("C", 3),
        ]));
        // Attacker rewrites the middle entry's task.
        let tampered = entry("X", 2);
        *c.tamper() = AuditTrail::from_entries(vec![entry("A", 1), tampered, entry("C", 3)]);
        let v = c.verify().unwrap_err();
        assert_eq!(v.first_bad_index, 1);
    }

    #[test]
    fn deletion_detected() {
        let mut c =
            ChainedTrail::commit(AuditTrail::from_entries(vec![entry("A", 1), entry("B", 2)]));
        *c.tamper() = AuditTrail::from_entries(vec![entry("A", 1)]);
        assert!(c.verify().is_err());
    }

    #[test]
    fn reorder_detected() {
        // Two distinct entries at the same timestamp can be silently
        // swapped in storage order — the chain still catches it.
        let a = entry("A", 5);
        let b = entry("B", 5);
        let mut c = ChainedTrail::commit(AuditTrail::from_entries(vec![a.clone(), b.clone()]));
        *c.tamper() = AuditTrail::from_entries(vec![b, a]);
        assert!(c.verify().is_err());
    }

    // --- tamper localization -------------------------------------------
    //
    // Each class of tampering must pinpoint the *first* broken link, and
    // the prefix before it must remain exactly what was committed — that
    // prefix is what degraded-mode auditing still analyzes.

    fn committed() -> (Vec<LogEntry>, ChainedTrail) {
        let entries = vec![entry("A", 1), entry("B", 2), entry("C", 3), entry("D", 4)];
        let c = ChainedTrail::commit(AuditTrail::from_entries(entries.clone()));
        (entries, c)
    }

    fn assert_localized(c: &ChainedTrail, original: &[LogEntry], expect_first_bad: usize) {
        let v = c.verify().unwrap_err();
        assert_eq!(v.first_bad_index, expect_first_bad);
        assert_eq!(c.verified_prefix_len(), expect_first_bad);
        // The verified prefix is byte-for-byte the committed history, so
        // an auditor can still replay it.
        assert_eq!(
            &c.trail().entries()[..expect_first_bad],
            &original[..expect_first_bad]
        );
    }

    #[test]
    fn modification_localized_to_edited_entry() {
        let (orig, mut c) = committed();
        let mut t = orig.clone();
        t[2] = entry("X", 3);
        *c.tamper() = AuditTrail::from_entries(t);
        assert_localized(&c, &orig, 2);
    }

    #[test]
    fn insertion_localized_to_inserted_position() {
        let (orig, mut c) = committed();
        let mut t = orig.clone();
        t.insert(1, entry("forged", 1));
        *c.tamper() = AuditTrail::from_entries(t);
        // The forged entry shares minute 1, so the stable sort places it
        // right after the genuine A: the chain breaks at index 1.
        assert_localized(&c, &orig, 1);
    }

    #[test]
    fn deletion_localized_to_first_missing_position() {
        let (orig, mut c) = committed();
        let mut t = orig.clone();
        t.remove(1);
        *c.tamper() = AuditTrail::from_entries(t);
        assert_localized(&c, &orig, 1);
    }

    #[test]
    fn reordering_localized_to_first_swapped_position() {
        let (orig, mut c) = committed();
        // Same-timestamp entries so reordering survives the chronological
        // sort (cross-timestamp swaps are undone by it).
        let x = entry("X", 5);
        let y = entry("Y", 5);
        let orig2 = vec![orig[0].clone(), orig[1].clone(), x.clone(), y.clone()];
        c = ChainedTrail::commit(AuditTrail::from_entries(orig2.clone()));
        *c.tamper() =
            AuditTrail::from_entries(vec![orig[0].clone(), orig[1].clone(), y.clone(), x.clone()]);
        assert_localized(&c, &orig2, 2);
    }

    #[test]
    fn verified_prefix_is_full_length_when_intact() {
        let (orig, c) = committed();
        assert_eq!(c.verified_prefix_len(), orig.len());
        assert!(c.verify().is_ok());
    }
}
