//! Hash-chained trail integrity.
//!
//! §3.4: "audit trails need to be protected from breaches of their
//! integrity … there exist well-established techniques \[18,19\]". This
//! module simulates those techniques with a forward hash chain: each entry
//! is digested together with the digest of its predecessor, so any
//! modification, insertion, deletion or reordering of committed entries
//! invalidates every subsequent link.
//!
//! The digest is 64-bit FNV-1a — a *simulation* of \[18,19\]'s cryptographic
//! MACs that exercises the same tamper-evidence interface without a crypto
//! dependency (see `DESIGN.md` §5). It is not collision-resistant against
//! an adversary and must not be used as a real security mechanism.

use crate::entry::LogEntry;
use crate::trail::AuditTrail;
use serde::{Deserialize, Serialize};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn entry_digest(prev: u64, entry: &LogEntry) -> u64 {
    // The rendered form is canonical for an entry (Display is injective on
    // the Def. 4 fields), so digesting it binds every field.
    let rendered = entry.to_string();
    let mut h = fnv1a(FNV_OFFSET, &prev.to_le_bytes());
    h = fnv1a(h, rendered.as_bytes());
    h
}

/// A trail with a digest chain committed over its entries.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ChainedTrail {
    trail: AuditTrail,
    digests: Vec<u64>,
}

/// Where verification found the chain broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityViolation {
    /// Index of the first entry whose digest no longer matches.
    pub first_bad_index: usize,
}

impl std::fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "audit-trail integrity violated at entry {}",
            self.first_bad_index
        )
    }
}

impl std::error::Error for IntegrityViolation {}

impl ChainedTrail {
    pub fn new() -> ChainedTrail {
        ChainedTrail::default()
    }

    /// Commit an existing trail (e.g. right after collection).
    pub fn commit(trail: AuditTrail) -> ChainedTrail {
        let mut digests = Vec::with_capacity(trail.len());
        let mut prev = 0u64;
        for e in &trail {
            prev = entry_digest(prev, e);
            digests.push(prev);
        }
        ChainedTrail { trail, digests }
    }

    /// Append a new entry at the head of the chain. The entry must not be
    /// older than the last committed one (committed history is immutable).
    pub fn append(&mut self, entry: LogEntry) -> Result<(), LogEntry> {
        if let Some(last) = self.trail.entries().last() {
            if entry.time < last.time {
                return Err(entry);
            }
        }
        let prev = self.digests.last().copied().unwrap_or(0);
        self.digests.push(entry_digest(prev, &entry));
        self.trail.push(entry);
        Ok(())
    }

    pub fn trail(&self) -> &AuditTrail {
        &self.trail
    }

    /// The digest covering the whole trail so far (to be escrowed with a
    /// trusted party, per \[19\]).
    pub fn head_digest(&self) -> u64 {
        self.digests.last().copied().unwrap_or(0)
    }

    /// Re-derive the chain and compare: detects any in-place tampering.
    pub fn verify(&self) -> Result<(), IntegrityViolation> {
        let mut prev = 0u64;
        for (i, e) in self.trail.iter().enumerate() {
            prev = entry_digest(prev, e);
            if self.digests.get(i) != Some(&prev) {
                return Err(IntegrityViolation { first_bad_index: i });
            }
        }
        if self.digests.len() != self.trail.len() {
            return Err(IntegrityViolation {
                first_bad_index: self.trail.len().min(self.digests.len()),
            });
        }
        Ok(())
    }

    /// Test-and-audit helper: expose the trail mutably *without* updating
    /// digests, simulating an attacker with storage access.
    #[doc(hidden)]
    pub fn tamper(&mut self) -> &mut AuditTrail {
        &mut self.trail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use policy::object::ObjectId;
    use policy::statement::Action;

    fn entry(task: &str, minute: u64) -> LogEntry {
        LogEntry::success(
            "John",
            "GP",
            Action::Read,
            Some(ObjectId::of_subject("Jane", "EPR/Clinical")),
            task,
            "HT-1",
            Timestamp(minute),
        )
    }

    #[test]
    fn committed_trail_verifies() {
        let t = AuditTrail::from_entries(vec![entry("A", 1), entry("B", 2)]);
        let c = ChainedTrail::commit(t);
        assert!(c.verify().is_ok());
        assert_ne!(c.head_digest(), 0);
    }

    #[test]
    fn append_extends_chain() {
        let mut c = ChainedTrail::new();
        c.append(entry("A", 1)).unwrap();
        let h1 = c.head_digest();
        c.append(entry("B", 2)).unwrap();
        assert_ne!(c.head_digest(), h1);
        assert!(c.verify().is_ok());
    }

    #[test]
    fn backdated_append_rejected() {
        let mut c = ChainedTrail::new();
        c.append(entry("A", 10)).unwrap();
        assert!(c.append(entry("B", 5)).is_err());
    }

    #[test]
    fn in_place_edit_detected() {
        let mut c = ChainedTrail::commit(AuditTrail::from_entries(vec![
            entry("A", 1),
            entry("B", 2),
            entry("C", 3),
        ]));
        // Attacker rewrites the middle entry's task.
        let tampered = entry("X", 2);
        *c.tamper() = AuditTrail::from_entries(vec![entry("A", 1), tampered, entry("C", 3)]);
        let v = c.verify().unwrap_err();
        assert_eq!(v.first_bad_index, 1);
    }

    #[test]
    fn deletion_detected() {
        let mut c =
            ChainedTrail::commit(AuditTrail::from_entries(vec![entry("A", 1), entry("B", 2)]));
        *c.tamper() = AuditTrail::from_entries(vec![entry("A", 1)]);
        assert!(c.verify().is_err());
    }

    #[test]
    fn reorder_detected() {
        // Two distinct entries at the same timestamp can be silently
        // swapped in storage order — the chain still catches it.
        let a = entry("A", 5);
        let b = entry("B", 5);
        let mut c = ChainedTrail::commit(AuditTrail::from_entries(vec![a.clone(), b.clone()]));
        *c.tamper() = AuditTrail::from_entries(vec![b, a]);
        assert!(c.verify().is_err());
    }
}
