//! Log entries (Def. 4).
//!
//! A log entry is `(u, r, a, o, q, c, t, s)`: the user, the role held at
//! the time of the action, the action, the object (absent for pure task
//! events such as Fig. 4's `cancel … N/A`), the task and case identifying
//! the purpose, the time, and the task status indicator.

use crate::time::Timestamp;
use cows::symbol::Symbol;
use policy::object::ObjectId;
use policy::statement::Action;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Task status indicator: "the failure of a task makes the task completed"
/// (§3.4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum TaskStatus {
    Success,
    Failure,
}

impl fmt::Display for TaskStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TaskStatus::Success => "success",
            TaskStatus::Failure => "failure",
        })
    }
}

/// Def. 4 — a log entry.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct LogEntry {
    pub user: Symbol,
    pub role: Symbol,
    pub action: Action,
    /// `None` renders as the paper's `N/A` (e.g. a task cancellation).
    pub object: Option<ObjectId>,
    pub task: Symbol,
    pub case: Symbol,
    pub time: Timestamp,
    pub status: TaskStatus,
}

impl LogEntry {
    /// Convenience constructor for successful actions.
    #[allow(clippy::too_many_arguments)]
    pub fn success(
        user: impl Into<Symbol>,
        role: impl Into<Symbol>,
        action: Action,
        object: Option<ObjectId>,
        task: impl Into<Symbol>,
        case: impl Into<Symbol>,
        time: Timestamp,
    ) -> LogEntry {
        LogEntry {
            user: user.into(),
            role: role.into(),
            action,
            object,
            task: task.into(),
            case: case.into(),
            time,
            status: TaskStatus::Success,
        }
    }

    pub fn is_failure(&self) -> bool {
        self.status == TaskStatus::Failure
    }
}

impl fmt::Display for LogEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {} {} {} {}",
            self.user,
            self.role,
            self.action,
            self.object
                .as_ref()
                .map(ToString::to_string)
                .unwrap_or_else(|| "N/A".to_string()),
            self.task,
            self.case,
            self.time,
            self.status
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    #[test]
    fn display_matches_fig4_row() {
        let e = LogEntry::success(
            "John",
            "GP",
            Action::Read,
            Some(ObjectId::of_subject("Jane", "EPR/Clinical")),
            "T01",
            "HT-1",
            "201003121210".parse().unwrap(),
        );
        assert_eq!(
            e.to_string(),
            "John GP read [Jane]EPR/Clinical T01 HT-1 201003121210 success"
        );
    }

    #[test]
    fn missing_object_renders_na() {
        let e = LogEntry {
            user: sym("John"),
            role: sym("GP"),
            action: Action::Cancel,
            object: None,
            task: sym("T02"),
            case: sym("HT-1"),
            time: "201003121216".parse().unwrap(),
            status: TaskStatus::Failure,
        };
        assert_eq!(
            e.to_string(),
            "John GP cancel N/A T02 HT-1 201003121216 failure"
        );
        assert!(e.is_failure());
    }
}
