//! Incremental reading of an append-only trail file.
//!
//! A live monitor consumes the same canonical trail lines as the batch
//! auditor, but from a file that is still being written. [`TailReader`]
//! tracks a byte offset and, on each [`poll`](TailReader::poll), parses
//! only the complete lines appended since the previous poll:
//!
//! * **Torn tails** — log shippers append lines non-atomically, so the
//!   file may momentarily end mid-line. The reader only consumes up to the
//!   last `\n`; a torn tail is left in the file for the next poll rather
//!   than quarantined as a corrupt line.
//! * **Salvage** — complete lines go through
//!   [`crate::salvage::parse_trail_salvage`], so a line corrupted at rest
//!   is quarantined with a reason instead of aborting the tail.
//! * **Rotation** — the reader remembers the `(dev, ino)` identity of the
//!   file it is consuming and resets to byte 0 whenever the path starts
//!   naming a different file, even one longer than the consumed offset.
//!   A shrink below the consumed offset also resets (rewrite in place,
//!   or the fallback on platforms without inode identity).
//!
//! The consumed offset is exposed so a monitor checkpoint can record
//! exactly how much of the stream its state reflects, and a restarted
//! tailer can resume from that byte.

use crate::salvage::{parse_trail_salvage, Quarantine};
use crate::trail::AuditTrail;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// One poll's result.
#[derive(Debug)]
pub struct TailChunk {
    /// Entries parsed from the newly consumed complete lines.
    pub trail: AuditTrail,
    /// Salvage report for those lines.
    pub quarantine: Quarantine,
    /// Whether the file was detected as truncated/rotated (the reader
    /// restarted from byte 0).
    pub truncated: bool,
}

/// A byte-offset tail over an append-only trail file.
#[derive(Debug)]
pub struct TailReader {
    path: PathBuf,
    offset: u64,
    /// `(dev, ino)` of the file the offset refers to. Rotation replaces
    /// the path with a different inode; if the replacement is already
    /// *longer* than the consumed offset, the shrink heuristic alone
    /// would keep reading from a stale mid-file position in the new file.
    identity: Option<(u64, u64)>,
}

impl TailReader {
    /// Tail `path` from the beginning.
    pub fn new(path: impl Into<PathBuf>) -> TailReader {
        TailReader {
            path: path.into(),
            offset: 0,
            identity: None,
        }
    }

    /// Resume tailing from a previously consumed offset (e.g. out of a
    /// monitor checkpoint).
    pub fn with_offset(path: impl Into<PathBuf>, offset: u64) -> TailReader {
        TailReader {
            path: path.into(),
            offset,
            identity: None,
        }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes consumed so far (always at a line boundary).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Parse everything appended since the last poll. A missing file is
    /// not an error — it yields an empty chunk (the writer may not have
    /// created it yet).
    pub fn poll(&mut self) -> std::io::Result<TailChunk> {
        let mut truncated = false;
        let mut file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(TailChunk {
                    trail: AuditTrail::new(),
                    quarantine: Quarantine::default(),
                    truncated: false,
                });
            }
            Err(e) => return Err(e),
        };
        let meta = file.metadata()?;
        let len = meta.len();
        let identity = file_identity(&meta);
        match (self.identity, identity) {
            (Some(old), Some(new)) if old != new => {
                // The path now names a different file (rotation), even if
                // the replacement is longer than what we had consumed.
                self.offset = 0;
                truncated = true;
            }
            _ => {}
        }
        self.identity = identity.or(self.identity);
        if len < self.offset {
            // The file shrank under us: rotation or rewrite. Start over.
            // (Also the rotation fallback where inode identity is
            // unavailable.)
            self.offset = 0;
            truncated = true;
        }
        if len == self.offset {
            return Ok(TailChunk {
                trail: AuditTrail::new(),
                quarantine: Quarantine::default(),
                truncated,
            });
        }
        file.seek(SeekFrom::Start(self.offset))?;
        let mut buf = Vec::with_capacity((len - self.offset) as usize);
        file.take(len - self.offset).read_to_end(&mut buf)?;
        // Only complete lines are consumable; a torn tail stays for later.
        let consumable = match buf.iter().rposition(|&b| b == b'\n') {
            Some(i) => i + 1,
            None => 0,
        };
        if consumable == 0 {
            return Ok(TailChunk {
                trail: AuditTrail::new(),
                quarantine: Quarantine::default(),
                truncated,
            });
        }
        let text = String::from_utf8_lossy(&buf[..consumable]);
        let (trail, quarantine) = parse_trail_salvage(&text);
        self.offset += consumable as u64;
        Ok(TailChunk {
            trail,
            quarantine,
            truncated,
        })
    }
}

/// `(dev, ino)` where the platform exposes it; `None` elsewhere (those
/// platforms keep the shrink-only rotation heuristic).
#[cfg(unix)]
fn file_identity(meta: &std::fs::Metadata) -> Option<(u64, u64)> {
    use std::os::unix::fs::MetadataExt;
    Some((meta.dev(), meta.ino()))
}

#[cfg(not(unix))]
fn file_identity(_meta: &std::fs::Metadata) -> Option<(u64, u64)> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::io::Write;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("purposectl-tail-tests");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-{name}.trail", std::process::id()));
        let _ = fs::remove_file(&path);
        path
    }

    const L1: &str = "John GP read [David]EPR/Demographics T01 HT-1 201007060900 success\n";
    const L2: &str = "Bob Cardiologist read [David]EPR/Clinical T06 HT-1 201007060905 success\n";

    #[test]
    fn reads_only_appended_complete_lines() {
        let path = scratch("append");
        let mut reader = TailReader::new(&path);
        // Nothing there yet.
        assert_eq!(reader.poll().unwrap().trail.len(), 0);

        fs::write(&path, L1).unwrap();
        let chunk = reader.poll().unwrap();
        assert_eq!(chunk.trail.len(), 1);
        assert!(chunk.quarantine.is_clean());
        // No new data → empty poll, offset unchanged.
        let before = reader.offset();
        assert_eq!(reader.poll().unwrap().trail.len(), 0);
        assert_eq!(reader.offset(), before);

        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(L2.as_bytes()).unwrap();
        drop(f);
        let chunk = reader.poll().unwrap();
        assert_eq!(chunk.trail.len(), 1);
        assert_eq!(chunk.trail.entries()[0].task.to_string(), "T06");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_deferred_not_quarantined() {
        let path = scratch("torn");
        // A complete line plus a torn prefix of the next one.
        let torn = &L2[..30];
        fs::write(&path, format!("{L1}{torn}")).unwrap();
        let mut reader = TailReader::new(&path);
        let chunk = reader.poll().unwrap();
        assert_eq!(chunk.trail.len(), 1, "only the complete line");
        assert!(chunk.quarantine.is_clean(), "torn tail is not corruption");
        assert_eq!(reader.offset() as usize, L1.len());
        // The writer finishes the line; the next poll picks it up whole.
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&L2.as_bytes()[30..]).unwrap();
        drop(f);
        let chunk = reader.poll().unwrap();
        assert_eq!(chunk.trail.len(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_complete_line_is_quarantined() {
        let path = scratch("corrupt");
        fs::write(&path, format!("{L1}this is not a trail line\n{L2}")).unwrap();
        let mut reader = TailReader::new(&path);
        let chunk = reader.poll().unwrap();
        assert_eq!(chunk.trail.len(), 2);
        assert_eq!(chunk.quarantine.lines.len(), 1);
        let _ = fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn rotation_to_longer_file_resets_to_start() {
        // Rotate to a *longer* replacement: the shrink heuristic alone
        // would keep the stale offset and read the new file mid-line.
        let path = scratch("rotate-longer");
        fs::write(&path, L1).unwrap();
        let mut reader = TailReader::new(&path);
        assert_eq!(reader.poll().unwrap().trail.len(), 1);
        assert_eq!(reader.offset() as usize, L1.len());

        // A longer file, atomically renamed over the path (new inode).
        let staged = scratch("rotate-longer-staged");
        fs::write(&staged, format!("{L1}{L2}")).unwrap();
        fs::rename(&staged, &path).unwrap();

        let chunk = reader.poll().unwrap();
        assert!(chunk.truncated, "identity change must be flagged");
        assert_eq!(chunk.trail.len(), 2, "the whole new file is consumed");
        assert!(chunk.quarantine.is_clean(), "no mid-line garbage");
        assert_eq!(reader.offset() as usize, L1.len() + L2.len());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rotation_resets_to_start() {
        let path = scratch("rotate");
        fs::write(&path, format!("{L1}{L2}")).unwrap();
        let mut reader = TailReader::new(&path);
        assert_eq!(reader.poll().unwrap().trail.len(), 2);
        // Rotate: the file is replaced by a shorter one.
        fs::write(&path, L1).unwrap();
        let chunk = reader.poll().unwrap();
        assert!(chunk.truncated);
        assert_eq!(chunk.trail.len(), 1);
        assert_eq!(reader.offset() as usize, L1.len());
        let _ = fs::remove_file(&path);
    }
}
