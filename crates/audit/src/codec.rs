//! Text codec for audit trails.
//!
//! One entry per line, whitespace-separated, in the column order of Fig. 4:
//!
//! ```text
//! user role action object task case time status
//! John GP read [Jane]EPR/Clinical T01 HT-1 201003121210 success
//! John GP cancel N/A T02 HT-1 201003121216 failure
//! ```
//!
//! The object column is `N/A` when the entry carries no object. Comments
//! (`#`) and blank lines are ignored on input.

use crate::entry::{LogEntry, TaskStatus};
use crate::trail::AuditTrail;
use cows::symbol::Symbol;
use std::fmt;

/// Parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrailParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for TrailParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TrailParseError {}

fn err(line: usize, message: impl Into<String>) -> TrailParseError {
    TrailParseError {
        line,
        message: message.into(),
    }
}

/// Parse a trail document. Entries are sorted chronologically on load.
pub fn parse_trail(text: &str) -> Result<AuditTrail, TrailParseError> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        entries.push(parse_entry(line, lineno)?);
    }
    Ok(AuditTrail::from_entries(entries))
}

fn parse_entry(line: &str, lineno: usize) -> Result<LogEntry, TrailParseError> {
    let tok: Vec<&str> = line.split_whitespace().collect();
    if tok.len() != 8 {
        return Err(err(
            lineno,
            format!(
                "expected 8 columns (user role action object task case time status), got {}",
                tok.len()
            ),
        ));
    }
    let action = tok[2].parse().map_err(|e| err(lineno, format!("{e}")))?;
    let object = if tok[3] == "N/A" {
        None
    } else {
        Some(tok[3].parse().map_err(|e| err(lineno, format!("{e}")))?)
    };
    let time = tok[6].parse().map_err(|e| err(lineno, format!("{e}")))?;
    let status = match tok[7] {
        "success" => TaskStatus::Success,
        "failure" => TaskStatus::Failure,
        other => return Err(err(lineno, format!("unknown status `{other}`"))),
    };
    Ok(LogEntry {
        user: Symbol::new(tok[0]),
        role: Symbol::new(tok[1]),
        action,
        object,
        task: Symbol::new(tok[4]),
        case: Symbol::new(tok[5]),
        time,
        status,
    })
}

/// Render a trail back to its text form (inverse of [`parse_trail`]).
pub fn format_trail(trail: &AuditTrail) -> String {
    let mut out = String::with_capacity(trail.len() * 64);
    for e in trail {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    const SAMPLE: &str = "\
# opening rows of Fig. 4
John GP read [Jane]EPR/Clinical T01 HT-1 201003121210 success
John GP write [Jane]EPR/Clinical T02 HT-1 201003121212 success
John GP cancel N/A T02 HT-1 201003121216 failure
";

    #[test]
    fn parses_fig4_rows() {
        let t = parse_trail(SAMPLE).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.entries()[2].object, None);
        assert_eq!(t.entries()[2].status, TaskStatus::Failure);
        assert_eq!(t.entries()[0].case, sym("HT-1"));
    }

    #[test]
    fn round_trip() {
        let t = parse_trail(SAMPLE).unwrap();
        let text = format_trail(&t);
        let t2 = parse_trail(&text).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn column_count_errors_carry_line_numbers() {
        let e = parse_trail("John GP read\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("8 columns"));
    }

    #[test]
    fn bad_action_and_time_reported() {
        assert!(parse_trail("u r poke o T c 201003121210 success\n").is_err());
        assert!(parse_trail("u r read o T c 20100312 success\n").is_err());
        assert!(parse_trail("u r read o T c 201003121210 maybe\n").is_err());
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let text = "\
u r read o2 B c 201003121220 success
u r read o1 A c 201003121210 success
";
        let t = parse_trail(text).unwrap();
        assert_eq!(t.entries()[0].task, sym("A"));
        assert!(t.is_chronological());
    }
}
