//! Text codec for audit trails.
//!
//! One entry per line, whitespace-separated, in the column order of Fig. 4:
//!
//! ```text
//! user role action object task case time status
//! John GP read [Jane]EPR/Clinical T01 HT-1 201003121210 success
//! John GP cancel N/A T02 HT-1 201003121216 failure
//! ```
//!
//! The object column is `N/A` when the entry carries no object. Comments
//! (`#`) and blank lines are ignored on input.
//!
//! [`parse_trail`] is the *strict* path: the first malformed line aborts the
//! whole parse. For logs collected in the field — where §7 concedes trails
//! are often partial and §3.4 assumes they can be damaged — use
//! [`crate::salvage::parse_trail_salvage`], which quarantines bad lines with
//! typed reasons instead of aborting.

use crate::entry::{LogEntry, TaskStatus};
use crate::trail::AuditTrail;
use cows::symbol::Symbol;
use std::fmt;

/// How many characters of the offending line an error (or quarantine
/// record) carries. Enough to diagnose without reopening the log, short
/// enough to keep reports readable.
pub const LINE_EXCERPT_CHARS: usize = 96;

/// Copy at most [`LINE_EXCERPT_CHARS`] characters of `line`, marking the cut.
pub fn line_excerpt(line: &str) -> String {
    match line.char_indices().nth(LINE_EXCERPT_CHARS) {
        Some((byte, _)) => format!("{}…", &line[..byte]),
        None => line.to_string(),
    }
}

/// Which column (or structural property) of a line failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Not exactly 8 whitespace-separated columns.
    ColumnCount { got: usize },
    /// Unknown action verb.
    Action,
    /// Malformed object identifier.
    Object,
    /// Unparseable `yyyymmddHHMM` timestamp.
    Time,
    /// Status other than `success`/`failure`.
    Status,
}

/// Parse error with 1-based line number, a truncated copy of the offending
/// line (so operators can diagnose without reopening the log), and the
/// failing column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrailParseError {
    pub line: usize,
    /// Truncated copy of the offending line text ([`line_excerpt`]).
    pub text: String,
    pub kind: ParseErrorKind,
    pub message: String,
}

impl fmt::Display for TrailParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {} in `{}`", self.line, self.message, self.text)
    }
}

impl std::error::Error for TrailParseError {}

fn err(
    line: usize,
    text: &str,
    kind: ParseErrorKind,
    message: impl Into<String>,
) -> TrailParseError {
    TrailParseError {
        line,
        text: line_excerpt(text),
        kind,
        message: message.into(),
    }
}

/// Parse a trail document (strict: the first bad line aborts).
///
/// Entries are **silently re-sorted chronologically** on load (stable on
/// equal timestamps), so physical disorder in the input file is invisible
/// to the caller — see `tests::unsorted_input_is_sorted_silently`. When
/// disorder itself is a signal worth surfacing (e.g. auditing a collector
/// suspected of buffering), prefer
/// [`crate::salvage::parse_trail_salvage`], which *records* out-of-order
/// arrivals as diagnostics while still producing the same sorted trail.
pub fn parse_trail(text: &str) -> Result<AuditTrail, TrailParseError> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        entries.push(parse_entry(line, lineno)?);
    }
    Ok(AuditTrail::from_entries(entries))
}

pub(crate) fn parse_entry(line: &str, lineno: usize) -> Result<LogEntry, TrailParseError> {
    let tok: Vec<&str> = line.split_whitespace().collect();
    if tok.len() != 8 {
        return Err(err(
            lineno,
            line,
            ParseErrorKind::ColumnCount { got: tok.len() },
            format!(
                "expected 8 columns (user role action object task case time status), got {}",
                tok.len()
            ),
        ));
    }
    let action = tok[2]
        .parse()
        .map_err(|e| err(lineno, line, ParseErrorKind::Action, format!("{e}")))?;
    let object = if tok[3] == "N/A" {
        None
    } else {
        Some(
            tok[3]
                .parse()
                .map_err(|e| err(lineno, line, ParseErrorKind::Object, format!("{e}")))?,
        )
    };
    let time = tok[6]
        .parse()
        .map_err(|e| err(lineno, line, ParseErrorKind::Time, format!("{e}")))?;
    let status = match tok[7] {
        "success" => TaskStatus::Success,
        "failure" => TaskStatus::Failure,
        other => {
            return Err(err(
                lineno,
                line,
                ParseErrorKind::Status,
                format!("unknown status `{other}`"),
            ))
        }
    };
    Ok(LogEntry {
        user: Symbol::new(tok[0]),
        role: Symbol::new(tok[1]),
        action,
        object,
        task: Symbol::new(tok[4]),
        case: Symbol::new(tok[5]),
        time,
        status,
    })
}

/// Render a trail back to its text form (inverse of [`parse_trail`]).
pub fn format_trail(trail: &AuditTrail) -> String {
    let mut out = String::with_capacity(trail.len() * 64);
    for e in trail {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    const SAMPLE: &str = "\
# opening rows of Fig. 4
John GP read [Jane]EPR/Clinical T01 HT-1 201003121210 success
John GP write [Jane]EPR/Clinical T02 HT-1 201003121212 success
John GP cancel N/A T02 HT-1 201003121216 failure
";

    #[test]
    fn parses_fig4_rows() {
        let t = parse_trail(SAMPLE).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.entries()[2].object, None);
        assert_eq!(t.entries()[2].status, TaskStatus::Failure);
        assert_eq!(t.entries()[0].case, sym("HT-1"));
    }

    #[test]
    fn round_trip() {
        let t = parse_trail(SAMPLE).unwrap();
        let text = format_trail(&t);
        let t2 = parse_trail(&text).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn column_count_errors_carry_line_numbers_and_text() {
        let e = parse_trail("John GP read\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.kind, ParseErrorKind::ColumnCount { got: 3 });
        assert!(e.message.contains("8 columns"));
        // The offending line rides along for diagnosis.
        assert_eq!(e.text, "John GP read");
        assert!(e.to_string().contains("`John GP read`"));
    }

    #[test]
    fn bad_action_and_time_reported_with_kinds() {
        let action = parse_trail("u r poke o T c 201003121210 success\n").unwrap_err();
        assert_eq!(action.kind, ParseErrorKind::Action);
        let time = parse_trail("u r read o T c 20100312 success\n").unwrap_err();
        assert_eq!(time.kind, ParseErrorKind::Time);
        assert!(time.text.contains("20100312"));
        let status = parse_trail("u r read o T c 201003121210 maybe\n").unwrap_err();
        assert_eq!(status.kind, ParseErrorKind::Status);
    }

    #[test]
    fn long_offending_lines_are_truncated() {
        let long = format!("u r read {} T c 201003121210 maybe", "x".repeat(300));
        let e = parse_trail(&long).unwrap_err();
        assert!(e.text.ends_with('…'));
        assert!(e.text.chars().count() <= LINE_EXCERPT_CHARS + 1);
    }

    #[test]
    fn unsorted_input_is_sorted_silently() {
        // The strict path hides physical disorder: the two lines below are
        // reversed in the file, yet the parsed trail is chronological and
        // no diagnostic is raised. `parse_trail_salvage` makes the same
        // disorder visible (see `salvage::tests`).
        let text = "\
u r read o2 B c 201003121220 success
u r read o1 A c 201003121210 success
";
        let t = parse_trail(text).unwrap();
        assert_eq!(t.entries()[0].task, sym("A"));
        assert!(t.is_chronological());
    }
}
