//! Timestamps in the paper's `yyyymmddHHMM` layout.
//!
//! Fig. 4: "Time is in the form year-month-day-hour-minute", e.g.
//! `201003121210`. [`Timestamp`] stores the instant as minutes since
//! 2000-01-01 00:00 so ordering and arithmetic are cheap, and converts to
//! and from the paper's digit layout (with proper calendar arithmetic,
//! including leap years).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Minutes since 2000-01-01 00:00.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// Invalid calendar field or malformed digit string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeParseError {
    pub input: String,
    pub reason: &'static str,
}

impl fmt::Display for TimeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid timestamp `{}`: {}", self.input, self.reason)
    }
}

impl std::error::Error for TimeParseError {}

fn is_leap(year: u64) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

fn days_in_month(year: u64, month: u64) -> u64 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

impl Timestamp {
    /// Build from calendar fields. Years before 2000 are rejected (the
    /// paper's trails start in 2010).
    pub fn from_ymd_hm(
        year: u64,
        month: u64,
        day: u64,
        hour: u64,
        minute: u64,
    ) -> Result<Timestamp, TimeParseError> {
        let bad = |reason| TimeParseError {
            input: format!("{year:04}{month:02}{day:02}{hour:02}{minute:02}"),
            reason,
        };
        if year < 2000 {
            return Err(bad("year before 2000"));
        }
        if !(1..=12).contains(&month) {
            return Err(bad("month out of range"));
        }
        if day < 1 || day > days_in_month(year, month) {
            return Err(bad("day out of range"));
        }
        if hour > 23 {
            return Err(bad("hour out of range"));
        }
        if minute > 59 {
            return Err(bad("minute out of range"));
        }
        let mut days: u64 = 0;
        for y in 2000..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
        for m in 1..month {
            days += days_in_month(year, m);
        }
        days += day - 1;
        Ok(Timestamp(days * 1440 + hour * 60 + minute))
    }

    /// Decompose back into `(year, month, day, hour, minute)`.
    pub fn to_ymd_hm(self) -> (u64, u64, u64, u64, u64) {
        let minutes = self.0;
        let mut days = minutes / 1440;
        let hm = minutes % 1440;
        let mut year = 2000;
        loop {
            let len = if is_leap(year) { 366 } else { 365 };
            if days < len {
                break;
            }
            days -= len;
            year += 1;
        }
        let mut month = 1;
        loop {
            let len = days_in_month(year, month);
            if days < len {
                break;
            }
            days -= len;
            month += 1;
        }
        (year, month, days + 1, hm / 60, hm % 60)
    }

    pub fn plus_minutes(self, m: u64) -> Timestamp {
        Timestamp(self.0 + m)
    }

    pub fn plus_days(self, d: u64) -> Timestamp {
        Timestamp(self.0 + d * 1440)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi) = self.to_ymd_hm();
        write!(f, "{y:04}{mo:02}{d:02}{h:02}{mi:02}")
    }
}

impl FromStr for Timestamp {
    type Err = TimeParseError;

    fn from_str(s: &str) -> Result<Timestamp, TimeParseError> {
        if s.len() != 12 || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(TimeParseError {
                input: s.into(),
                reason: "expected 12 digits (yyyymmddHHMM)",
            });
        }
        let num = |r: std::ops::Range<usize>| s[r].parse::<u64>().expect("digits checked");
        Timestamp::from_ymd_hm(num(0..4), num(4..6), num(6..8), num(8..10), num(10..12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timestamp_round_trips() {
        for s in [
            "201003121210",
            "201004301200",
            "200001010000",
            "202812312359",
        ] {
            let t: Timestamp = s.parse().unwrap();
            assert_eq!(t.to_string(), s);
        }
    }

    #[test]
    fn ordering_matches_chronology() {
        let a: Timestamp = "201003121210".parse().unwrap();
        let b: Timestamp = "201003121216".parse().unwrap();
        let c: Timestamp = "201004151210".parse().unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn leap_year_february() {
        assert!(Timestamp::from_ymd_hm(2012, 2, 29, 0, 0).is_ok());
        assert!(Timestamp::from_ymd_hm(2011, 2, 29, 0, 0).is_err());
        assert!(Timestamp::from_ymd_hm(2100, 2, 29, 0, 0).is_err()); // century rule
        assert!(Timestamp::from_ymd_hm(2000, 2, 29, 0, 0).is_ok()); // 400 rule
    }

    #[test]
    fn arithmetic_crosses_boundaries() {
        let t: Timestamp = "201012312355".parse().unwrap();
        assert_eq!(t.plus_minutes(10).to_string(), "201101010005");
        let d: Timestamp = "201002280000".parse().unwrap();
        assert_eq!(d.plus_days(1).to_string(), "201003010000");
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!("2010031212".parse::<Timestamp>().is_err()); // too short
        assert!("20100312121x".parse::<Timestamp>().is_err()); // non-digit
        assert!("201013121210".parse::<Timestamp>().is_err()); // month 13
        assert!("201003321210".parse::<Timestamp>().is_err()); // day 32
        assert!("201003122410".parse::<Timestamp>().is_err()); // hour 24
        assert!("201003121260".parse::<Timestamp>().is_err()); // minute 60
    }
}
