//! Audit trails (Def. 5).
//!
//! An audit trail is the chronological sequence of log entries. Entries
//! with equal timestamps (Fig. 4 contains two) keep their insertion order —
//! the trail is stable-sorted on time only.

use crate::entry::LogEntry;
use cows::symbol::Symbol;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Def. 5 — a chronologically-ordered sequence of log entries.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AuditTrail {
    entries: Vec<LogEntry>,
}

impl AuditTrail {
    pub fn new() -> AuditTrail {
        AuditTrail::default()
    }

    /// Build from entries, stable-sorting by time.
    pub fn from_entries(mut entries: Vec<LogEntry>) -> AuditTrail {
        entries.sort_by_key(|e| e.time);
        AuditTrail { entries }
    }

    /// Append an entry, keeping chronological order. Appending in time
    /// order is O(1); out-of-order entries are inserted at the right
    /// position (stable: after any equal timestamp).
    pub fn push(&mut self, entry: LogEntry) {
        match self.entries.last() {
            Some(last) if last.time > entry.time => {
                let pos = self.entries.partition_point(|e| e.time <= entry.time);
                self.entries.insert(pos, entry);
            }
            _ => self.entries.push(entry),
        }
    }

    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, LogEntry> {
        self.entries.iter()
    }

    /// The portion of the trail belonging to one case, in order — the unit
    /// Algorithm 1 analyzes.
    pub fn project_case(&self, case: Symbol) -> Vec<&LogEntry> {
        self.entries.iter().filter(|e| e.case == case).collect()
    }

    /// All cases mentioned by the trail, sorted.
    pub fn cases(&self) -> BTreeSet<Symbol> {
        self.entries.iter().map(|e| e.case).collect()
    }

    /// The cases in which `object` (or a sub-object of it) was accessed —
    /// §4: "for each case in which the object under investigation was
    /// accessed".
    pub fn cases_touching(&self, object: &policy::object::ObjectId) -> BTreeSet<Symbol> {
        self.entries
            .iter()
            .filter(|e| {
                e.object
                    .as_ref()
                    .map(|o| object.dominates(o) || o.dominates(object))
                    .unwrap_or(false)
            })
            .map(|e| e.case)
            .collect()
    }

    /// Merge another trail into this one (e.g. logs collected from several
    /// applications into "a single database", §3.4).
    pub fn merge(&mut self, other: AuditTrail) {
        for e in other.entries {
            self.push(e);
        }
    }

    /// Whether entries are in chronological order (always true by
    /// construction; used by property tests and the codec).
    pub fn is_chronological(&self) -> bool {
        self.entries.windows(2).all(|w| w[0].time <= w[1].time)
    }
}

impl IntoIterator for AuditTrail {
    type Item = LogEntry;
    type IntoIter = std::vec::IntoIter<LogEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a AuditTrail {
    type Item = &'a LogEntry;
    type IntoIter = std::slice::Iter<'a, LogEntry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;
    use cows::sym;
    use policy::object::ObjectId;
    use policy::statement::Action;

    fn entry(task: &str, case: &str, minute: u64) -> LogEntry {
        LogEntry::success(
            "John",
            "GP",
            Action::Read,
            Some(ObjectId::of_subject("Jane", "EPR/Clinical")),
            task,
            case,
            Timestamp(minute),
        )
    }

    #[test]
    fn from_entries_sorts() {
        let t = AuditTrail::from_entries(vec![entry("B", "c", 5), entry("A", "c", 1)]);
        assert_eq!(t.entries()[0].task, sym("A"));
        assert!(t.is_chronological());
    }

    #[test]
    fn push_keeps_order() {
        let mut t = AuditTrail::new();
        t.push(entry("A", "c", 10));
        t.push(entry("C", "c", 30));
        t.push(entry("B", "c", 20));
        let tasks: Vec<_> = t.iter().map(|e| e.task.to_string()).collect();
        assert_eq!(tasks, vec!["A", "B", "C"]);
    }

    #[test]
    fn equal_timestamps_keep_insertion_order() {
        let mut t = AuditTrail::new();
        t.push(entry("first", "c", 10));
        t.push(entry("second", "c", 10));
        let tasks: Vec<_> = t.iter().map(|e| e.task.to_string()).collect();
        assert_eq!(tasks, vec!["first", "second"]);
    }

    #[test]
    fn case_projection() {
        let t = AuditTrail::from_entries(vec![
            entry("A", "HT-1", 1),
            entry("B", "HT-2", 2),
            entry("C", "HT-1", 3),
        ]);
        let ht1 = t.project_case(sym("HT-1"));
        assert_eq!(ht1.len(), 2);
        assert_eq!(t.cases().len(), 2);
    }

    #[test]
    fn cases_touching_object() {
        let t = AuditTrail::from_entries(vec![
            entry("A", "HT-1", 1),
            LogEntry::success(
                "Bob",
                "Cardiologist",
                Action::Write,
                Some(ObjectId::plain("ClinicalTrial/Criteria")),
                "T91",
                "CT-1",
                Timestamp(2),
            ),
        ]);
        // Jane's whole EPR dominates the clinical section accessed in HT-1.
        let jane = ObjectId::of_subject("Jane", "EPR");
        assert_eq!(t.cases_touching(&jane), BTreeSet::from([sym("HT-1")]));
    }

    #[test]
    fn merge_interleaves() {
        let mut a = AuditTrail::from_entries(vec![entry("A", "c", 1), entry("C", "c", 30)]);
        let b = AuditTrail::from_entries(vec![entry("B", "c", 10)]);
        a.merge(b);
        let tasks: Vec<_> = a.iter().map(|e| e.task.to_string()).collect();
        assert_eq!(tasks, vec!["A", "B", "C"]);
    }
}
