//! The Fig. 4 audit trail.
//!
//! [`figure4_trail`] reproduces the rows printed in the paper verbatim.
//! Fig. 4 elides runs of similar entries with `···`; [`figure4_expanded`]
//! fills those runs in (Bob's T06 reads across cases HT-10…HT-20 and
//! HT-21…HT-30, and the weekly T94 measurements), which is what the
//! §4 analysis talks about ("Bob specified healthcare treatment as the
//! purpose in order to retrieve a larger number of EPRs").

use crate::codec::parse_trail;
use crate::entry::LogEntry;
use crate::time::Timestamp;
use crate::trail::AuditTrail;
use policy::object::ObjectId;
use policy::statement::Action;

/// The printed rows of Fig. 4, verbatim.
pub fn figure4_trail() -> AuditTrail {
    parse_trail(FIGURE4_TEXT).expect("builtin trail parses")
}

/// The Fig. 4 column text (kept in the codec format so it can double as a
/// documentation artifact and parser fixture).
pub const FIGURE4_TEXT: &str = "\
John GP read [Jane]EPR/Clinical T01 HT-1 201003121210 success
John GP write [Jane]EPR/Clinical T02 HT-1 201003121212 success
John GP cancel N/A T02 HT-1 201003121216 failure
John GP read [Jane]EPR/Clinical T01 HT-1 201003121218 success
John GP write [Jane]EPR/Clinical T05 HT-1 201003121220 success
John GP read [David]EPR/Demographics T01 HT-2 201003121230 success
Bob Cardiologist read [Jane]EPR/Clinical T06 HT-1 201003141010 success
Bob Cardiologist write [Jane]EPR/Clinical T09 HT-1 201003141025 success
Charlie Radiologist read [Jane]EPR/Clinical T10 HT-1 201003201640 success
Charlie Radiologist execute ScanSoftware T11 HT-1 201003201645 success
Charlie Radiologist write [Jane]EPR/Clinical/Scan T12 HT-1 201003201730 success
Bob Cardiologist read [Jane]EPR/Clinical T06 HT-1 201003301010 success
Bob Cardiologist write [Jane]EPR/Clinical T07 HT-1 201003301020 success
John GP read [Jane]EPR/Clinical T01 HT-1 201004151210 success
John GP write [Jane]EPR/Clinical T02 HT-1 201004151210 success
John GP write [Jane]EPR/Clinical T03 HT-1 201004151215 success
John GP write [Jane]EPR/Clinical T04 HT-1 201004151220 success
Bob Cardiologist write ClinicalTrial/Criteria T91 CT-1 201004151450 success
Bob Cardiologist read [Alice]EPR/Clinical T06 HT-10 201004151500 success
Bob Cardiologist read [Jane]EPR/Clinical T06 HT-11 201004151501 success
Bob Cardiologist read [David]EPR/Clinical T06 HT-20 201004151515 success
Bob Cardiologist write ClinicalTrial/ListOfSelCand T92 CT-1 201004151520 success
Bob Cardiologist read [Alice]EPR/Demographics T06 HT-21 201004151530 success
Bob Cardiologist read [David]EPR/Demographics T06 HT-30 201004151550 success
Bob Cardiologist write ClinicalTrial/ListOfEnrCand T93 CT-1 201004201200 success
Bob Cardiologist write ClinicalTrial/Measurements T94 CT-1 201004221600 success
Bob Cardiologist write ClinicalTrial/Measurements T94 CT-1 201004291600 success
Bob Cardiologist write ClinicalTrial/Results T95 CT-1 201004301200 success
";

/// Synthetic patient names filling the `···` runs of Fig. 4.
pub const ELIDED_PATIENTS: [&str; 8] = [
    "Erin", "Frank", "Grace", "Heidi", "Ivan", "Judy", "Ken", "Laura",
];

/// Fig. 4 with the elided `···` runs filled in: one `T06` clinical read per
/// case HT-12…HT-19 and one demographics read per case HT-22…HT-29, all by
/// Bob, interleaved at one-minute intervals inside the gaps the figure
/// leaves.
pub fn figure4_expanded() -> AuditTrail {
    let mut trail = figure4_trail();
    // Clinical reads between HT-11 (…1501) and HT-20 (…1515).
    let base: Timestamp = "201004151502".parse().expect("valid literal");
    for (i, patient) in ELIDED_PATIENTS.iter().enumerate() {
        trail.push(LogEntry::success(
            "Bob",
            "Cardiologist",
            Action::Read,
            Some(ObjectId::of_subject(*patient, "EPR/Clinical")),
            "T06",
            format!("HT-{}", 12 + i).as_str(),
            base.plus_minutes(i as u64),
        ));
    }
    // Demographics reads between HT-21 (…1530) and HT-30 (…1550).
    let base: Timestamp = "201004151532".parse().expect("valid literal");
    for (i, patient) in ELIDED_PATIENTS.iter().enumerate() {
        trail.push(LogEntry::success(
            "Bob",
            "Cardiologist",
            Action::Read,
            Some(ObjectId::of_subject(*patient, "EPR/Demographics")),
            "T06",
            format!("HT-{}", 22 + i).as_str(),
            base.plus_minutes(i as u64),
        ));
    }
    // Mid-week T94 measurements between the two printed ones.
    for (i, day) in [23u64, 25, 27].iter().enumerate() {
        trail.push(LogEntry::success(
            "Bob",
            "Cardiologist",
            Action::Write,
            Some(ObjectId::plain("ClinicalTrial/Measurements")),
            "T94",
            "CT-1",
            Timestamp::from_ymd_hm(2010, 4, *day, 16, i as u64).expect("valid literal"),
        ));
    }
    trail
}

#[cfg(test)]
mod tests {
    use super::*;
    use cows::sym;

    #[test]
    fn fig4_has_28_printed_rows() {
        let t = figure4_trail();
        assert_eq!(t.len(), 28);
        assert!(t.is_chronological());
    }

    #[test]
    fn fig4_case_projections() {
        let t = figure4_trail();
        let ht1 = t.project_case(sym("HT-1"));
        assert_eq!(ht1.len(), 16);
        let ct1 = t.project_case(sym("CT-1"));
        assert_eq!(ct1.len(), 6);
        let ht11 = t.project_case(sym("HT-11"));
        assert_eq!(ht11.len(), 1);
    }

    #[test]
    fn fig4_jane_cases() {
        // §4: "Besides for HT-1, Jane's EPR has been accessed for case
        // HT-11."
        let t = figure4_trail();
        let jane = policy::object::ObjectId::of_subject("Jane", "EPR");
        let cases = t.cases_touching(&jane);
        assert_eq!(
            cases,
            std::collections::BTreeSet::from([sym("HT-1"), sym("HT-11")])
        );
    }

    #[test]
    fn expanded_trail_is_consistent() {
        let t = figure4_expanded();
        assert_eq!(t.len(), 28 + 8 + 8 + 3);
        assert!(t.is_chronological());
        // The expansion keeps one entry per synthetic case.
        assert_eq!(t.project_case(sym("HT-15")).len(), 1);
    }
}
