//! Degraded-mode (salvage) ingestion.
//!
//! §7 concedes real audit trails are often *partial*, and §3.4 assumes they
//! can be damaged outright. The strict codec ([`crate::codec::parse_trail`])
//! aborts on the first malformed line, which turns one flipped bit into a
//! total audit outage. Salvage mode instead keeps every line it can prove
//! well-formed and **quarantines** the rest with a typed
//! [`QuarantineReason`], so the auditor still renders verdicts for every
//! case whose entries survived intact — and the operator gets an exact,
//! diagnosable account of what was dropped and why.
//!
//! Two entry points:
//!
//! - [`parse_trail_salvage`] — text-level salvage: malformed columns,
//!   unknown verbs, broken timestamps, duplicates. Out-of-order arrivals
//!   are *kept* (the trail re-sorts, exactly as the strict path does) but
//!   surfaced as [`OutOfOrderArrival`] diagnostics rather than silently
//!   hidden.
//! - [`salvage_chained`] — integrity-level salvage: runs
//!   [`ChainedTrail::verify`] and, on a broken link, quarantines the
//!   tampered suffix while returning the cryptographically-intact prefix
//!   for auditing.

use crate::chain::ChainedTrail;
use crate::codec::{line_excerpt, parse_entry, ParseErrorKind};
use crate::time::Timestamp;
use crate::trail::AuditTrail;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Why a line (or committed entry) was excluded from the salvaged trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// Not exactly 8 whitespace-separated columns.
    BadColumnCount { got: usize },
    /// Unknown action verb.
    BadAction { detail: String },
    /// Malformed object identifier.
    BadObject { detail: String },
    /// Unparseable `yyyymmddHHMM` timestamp.
    BadTime { detail: String },
    /// Status other than `success`/`failure`.
    BadStatus { detail: String },
    /// Byte-for-byte duplicate (modulo surrounding whitespace) of a
    /// well-formed line first seen at `first_line`.
    DuplicateEntry { first_line: usize },
    /// Committed entry at or after the first broken hash link
    /// (`ChainedTrail::verify` reported `first_bad_index`).
    ChainBreakSuffix { first_bad_index: usize },
}

impl QuarantineReason {
    /// Stable machine-readable label, used for grouping and reports.
    pub fn label(&self) -> &'static str {
        match self {
            QuarantineReason::BadColumnCount { .. } => "bad-column-count",
            QuarantineReason::BadAction { .. } => "bad-action",
            QuarantineReason::BadObject { .. } => "bad-object",
            QuarantineReason::BadTime { .. } => "bad-time",
            QuarantineReason::BadStatus { .. } => "bad-status",
            QuarantineReason::DuplicateEntry { .. } => "duplicate-entry",
            QuarantineReason::ChainBreakSuffix { .. } => "chain-break-suffix",
        }
    }

    fn from_parse(kind: ParseErrorKind, message: String) -> QuarantineReason {
        match kind {
            ParseErrorKind::ColumnCount { got } => QuarantineReason::BadColumnCount { got },
            ParseErrorKind::Action => QuarantineReason::BadAction { detail: message },
            ParseErrorKind::Object => QuarantineReason::BadObject { detail: message },
            ParseErrorKind::Time => QuarantineReason::BadTime { detail: message },
            ParseErrorKind::Status => QuarantineReason::BadStatus { detail: message },
        }
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::BadColumnCount { got } => {
                write!(f, "bad-column-count (expected 8 columns, got {got})")
            }
            QuarantineReason::BadAction { detail } => write!(f, "bad-action ({detail})"),
            QuarantineReason::BadObject { detail } => write!(f, "bad-object ({detail})"),
            QuarantineReason::BadTime { detail } => write!(f, "bad-time ({detail})"),
            QuarantineReason::BadStatus { detail } => write!(f, "bad-status ({detail})"),
            QuarantineReason::DuplicateEntry { first_line } => {
                write!(f, "duplicate-entry (first seen at line {first_line})")
            }
            QuarantineReason::ChainBreakSuffix { first_bad_index } => write!(
                f,
                "chain-break-suffix (hash chain broken at entry {first_bad_index})"
            ),
        }
    }
}

/// One excluded line, with enough context to diagnose it in place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedLine {
    /// 1-based line number in the source document (for [`salvage_chained`],
    /// the 1-based entry position in the committed trail).
    pub line: usize,
    /// Truncated copy of the offending text ([`line_excerpt`]).
    pub text: String,
    pub reason: QuarantineReason,
}

impl fmt::Display for QuarantinedLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}: `{}`", self.line, self.reason, self.text)
    }
}

/// A well-formed entry that arrived *behind* an already-seen timestamp.
///
/// The entry is kept — the trail re-sorts, exactly as the strict parser
/// does — but the disorder itself is evidence (a buffering collector, a
/// replayed segment, a skewed clock) and salvage mode refuses to hide it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfOrderArrival {
    /// 1-based line number in the source document.
    pub line: usize,
    /// Truncated copy of the line text.
    pub text: String,
    /// The entry's own timestamp.
    pub time: Timestamp,
    /// The latest timestamp seen on any earlier line (the high-water mark
    /// this entry regressed behind).
    pub high_water: Timestamp,
}

impl fmt::Display for OutOfOrderArrival {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}: out-of-order arrival ({} behind high-water {}): `{}`",
            self.line, self.time, self.high_water, self.text
        )
    }
}

/// Everything salvage ingestion set aside, plus throughput counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Quarantine {
    /// Excluded lines/entries, in source order.
    pub lines: Vec<QuarantinedLine>,
    /// Kept-but-disordered arrivals, in source order.
    pub out_of_order: Vec<OutOfOrderArrival>,
    /// Candidate lines scanned (blank/comment lines excluded).
    pub scanned: usize,
    /// Entries that made it into the salvaged trail.
    pub kept: usize,
}

impl Quarantine {
    /// No lines excluded and no disorder observed.
    pub fn is_clean(&self) -> bool {
        self.lines.is_empty() && self.out_of_order.is_empty()
    }

    /// Excluded-line counts grouped by [`QuarantineReason::label`].
    pub fn counts_by_reason(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for l in &self.lines {
            *counts.entry(l.reason.label()).or_insert(0) += 1;
        }
        counts
    }

    /// Full multi-line report (what `--quarantine-out` writes).
    pub fn render(&self) -> String {
        let mut out = format!("# quarantine report: {self}\n");
        for l in &self.lines {
            out.push_str(&format!("{l}\n"));
        }
        for o in &self.out_of_order {
            out.push_str(&format!("{o}\n"));
        }
        out
    }
}

/// One-line summary, e.g.
/// `kept 97/100 lines, quarantined 3 (bad-time: 2, duplicate-entry: 1), 1 out-of-order`.
impl fmt::Display for Quarantine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kept {}/{} lines", self.kept, self.scanned)?;
        if !self.lines.is_empty() {
            let by: Vec<String> = self
                .counts_by_reason()
                .into_iter()
                .map(|(label, n)| format!("{label}: {n}"))
                .collect();
            write!(f, ", quarantined {} ({})", self.lines.len(), by.join(", "))?;
        }
        if !self.out_of_order.is_empty() {
            write!(f, ", {} out-of-order", self.out_of_order.len())?;
        }
        Ok(())
    }
}

/// Parse a trail document in salvage mode: never fails, returns the trail
/// built from every salvageable line plus a [`Quarantine`] describing what
/// was set aside.
///
/// Duplicate detection keys on the *trimmed line text* of entries that
/// parsed — byte-identical records (what a stuttering collector or the
/// duplicate-entry chaos injector produces; `format_trail` output is
/// canonical, one space per separator). Borrowing the key from the input
/// keeps salvage ingestion allocation-free on the dedup path, which is
/// what holds the overhead vs. strict mode inside the P10 acceptance
/// gate.
/// [`parse_trail_salvage`] with telemetry: when the parse was lossy, a
/// `Degraded` summary event plus one `Quarantined`/`Noted` event per
/// incident are emitted on the recorder — the structured form of the
/// degraded-mode block the CLI renders. A clean parse emits nothing.
pub fn parse_trail_salvage_traced(
    text: &str,
    recorder: &obs::Recorder,
) -> (AuditTrail, Quarantine) {
    let (trail, quarantine) = parse_trail_salvage(text);
    if !quarantine.is_clean() {
        recorder.emit(|| obs::ObsEvent::Degraded {
            detail: quarantine.to_string(),
        });
        for line in &quarantine.lines {
            recorder.emit(|| obs::ObsEvent::Quarantined {
                line: line.to_string(),
            });
        }
        for arrival in &quarantine.out_of_order {
            recorder.emit(|| obs::ObsEvent::Noted {
                arrival: arrival.to_string(),
            });
        }
    }
    (trail, quarantine)
}

pub fn parse_trail_salvage(text: &str) -> (AuditTrail, Quarantine) {
    let mut q = Quarantine::default();
    // Pre-size the per-entry containers from a byte-length estimate
    // (entry lines run ~60-90 bytes); over-reserving is cheap, rehashing
    // mid-parse is not.
    let line_estimate = text.len() / 64 + 8;
    let mut entries = Vec::with_capacity(line_estimate);
    let mut seen: HashMap<&str, usize> = HashMap::with_capacity(line_estimate);
    let mut high_water: Option<Timestamp> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        q.scanned += 1;
        let entry = match parse_entry(line, lineno) {
            Ok(entry) => entry,
            Err(e) => {
                q.lines.push(QuarantinedLine {
                    line: lineno,
                    text: e.text,
                    reason: QuarantineReason::from_parse(e.kind, e.message),
                });
                continue;
            }
        };
        match seen.entry(line) {
            std::collections::hash_map::Entry::Occupied(first) => {
                q.lines.push(QuarantinedLine {
                    line: lineno,
                    text: line_excerpt(line),
                    reason: QuarantineReason::DuplicateEntry {
                        first_line: *first.get(),
                    },
                });
                continue;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(lineno);
            }
        }
        if let Some(hw) = high_water {
            if entry.time < hw {
                q.out_of_order.push(OutOfOrderArrival {
                    line: lineno,
                    text: line_excerpt(line),
                    time: entry.time,
                    high_water: hw,
                });
            }
        }
        high_water = Some(high_water.map_or(entry.time, |hw| hw.max(entry.time)));
        entries.push(entry);
    }
    q.kept = entries.len();
    (AuditTrail::from_entries(entries), q)
}

/// Salvage a committed trail whose hash chain may be broken: verify the
/// chain, and on a violation quarantine every entry from the first broken
/// link onward ([`QuarantineReason::ChainBreakSuffix`]) while returning the
/// intact prefix — still fully covered by matching digests — for auditing.
pub fn salvage_chained(chained: &ChainedTrail) -> (AuditTrail, Quarantine) {
    let trail = chained.trail();
    let mut q = Quarantine {
        scanned: trail.len(),
        ..Quarantine::default()
    };
    let prefix = chained.verified_prefix_len();
    if prefix < trail.len() {
        for (i, e) in trail.entries()[prefix..].iter().enumerate() {
            q.lines.push(QuarantinedLine {
                line: prefix + i + 1,
                text: line_excerpt(&e.to_string()),
                reason: QuarantineReason::ChainBreakSuffix {
                    first_bad_index: prefix,
                },
            });
        }
    }
    q.kept = prefix;
    let salvaged = AuditTrail::from_entries(trail.entries()[..prefix].to_vec());
    (salvaged, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{format_trail, parse_trail};
    use crate::entry::LogEntry;
    use cows::sym;
    use policy::object::ObjectId;
    use policy::statement::Action;

    fn entry(task: &str, case: &str, minute: u64) -> LogEntry {
        LogEntry::success(
            "John",
            "GP",
            Action::Read,
            Some(ObjectId::of_subject("Jane", "EPR/Clinical")),
            task,
            case,
            Timestamp(minute),
        )
    }

    const DAMAGED: &str = "\
# header comment
John GP read [Jane]EPR/Clinical T01 HT-1 201003121210 success
John GP write [Jane]EPR/Clinical T02
John GP read [Jane]EPR/Clinical T01 HT-1 201003121210 success
Mark Nurse poke N/A T03 HT-1 201003121215 success
Mark Nurse read N/A T03 HT-1 201003129999 success
Mark Nurse read N/A T03 HT-1 201003121215 maybe
Mark Nurse read N/A T03 HT-1 201003121215 success
";

    #[test]
    fn salvage_keeps_good_lines_and_types_the_rest() {
        let (trail, q) = parse_trail_salvage(DAMAGED);
        assert_eq!(trail.len(), 2);
        assert_eq!(q.scanned, 7);
        assert_eq!(q.kept, 2);
        let reasons: Vec<&'static str> = q.lines.iter().map(|l| l.reason.label()).collect();
        assert_eq!(
            reasons,
            vec![
                "bad-column-count",
                "duplicate-entry",
                "bad-action",
                "bad-time",
                "bad-status"
            ]
        );
        // Line numbers are 1-based positions in the document, comment included.
        let lines: Vec<usize> = q.lines.iter().map(|l| l.line).collect();
        assert_eq!(lines, vec![3, 4, 5, 6, 7]);
        assert_eq!(
            q.lines[1].reason,
            QuarantineReason::DuplicateEntry { first_line: 2 }
        );
        // Every record carries the offending text.
        assert!(q.lines.iter().all(|l| !l.text.is_empty()));
    }

    #[test]
    fn salvage_on_clean_text_matches_strict_parse() {
        let t = AuditTrail::from_entries(vec![entry("A", "c", 1), entry("B", "c", 2)]);
        let text = format_trail(&t);
        let strict = parse_trail(&text).unwrap();
        let (salvaged, q) = parse_trail_salvage(&text);
        assert_eq!(strict, salvaged);
        assert!(q.is_clean());
        assert_eq!(q.kept, 2);
    }

    #[test]
    fn out_of_order_is_kept_but_recorded() {
        let text = "\
u r read o2 B c 201003121220 success
u r read o1 A c 201003121210 success
u r read o3 C c 201003121230 success
";
        let (trail, q) = parse_trail_salvage(text);
        // The entry is kept and the trail re-sorted — same result as strict.
        assert_eq!(trail, parse_trail(text).unwrap());
        assert!(trail.is_chronological());
        assert!(q.lines.is_empty());
        // ...but unlike strict mode, the disorder is visible.
        assert_eq!(q.out_of_order.len(), 1);
        let o = &q.out_of_order[0];
        assert_eq!(o.line, 2);
        assert_eq!(o.time, "201003121210".parse().unwrap());
        assert_eq!(o.high_water, "201003121220".parse().unwrap());
    }

    #[test]
    fn summary_groups_reasons() {
        let (_, q) = parse_trail_salvage(DAMAGED);
        let s = q.to_string();
        assert!(s.starts_with("kept 2/7 lines"), "{s}");
        assert!(s.contains("quarantined 5"), "{s}");
        assert!(s.contains("duplicate-entry: 1"), "{s}");
        let rendered = q.render();
        assert!(rendered.contains("bad-status"), "{rendered}");
    }

    #[test]
    fn chain_break_quarantines_suffix_keeps_prefix() {
        let committed = vec![
            entry("A", "HT-1", 1),
            entry("B", "HT-1", 2),
            entry("C", "HT-2", 3),
            entry("D", "HT-2", 4),
        ];
        let mut c = ChainedTrail::commit(AuditTrail::from_entries(committed.clone()));
        // Attacker rewrites entry 2 in storage.
        let mut tampered = committed.clone();
        tampered[2] = entry("X", "HT-2", 3);
        *c.tamper() = AuditTrail::from_entries(tampered);

        let (text_salvaged, _) = parse_trail_salvage(&format_trail(c.trail()));
        assert_eq!(
            text_salvaged.len(),
            4,
            "text salvage alone cannot see tampering"
        );
        let (salvaged, q2) = salvage_chained(&c);
        assert_eq!(salvaged.len(), 2);
        assert_eq!(salvaged.entries()[1].task, sym("B"));
        assert_eq!(q2.kept, 2);
        assert_eq!(q2.lines.len(), 2);
        assert!(q2
            .lines
            .iter()
            .all(|l| l.reason == QuarantineReason::ChainBreakSuffix { first_bad_index: 2 }));
        assert_eq!(q2.lines[0].line, 3);
    }

    #[test]
    fn intact_chain_salvages_everything() {
        let c = ChainedTrail::commit(AuditTrail::from_entries(vec![
            entry("A", "c", 1),
            entry("B", "c", 2),
        ]));
        let (salvaged, q) = salvage_chained(&c);
        assert_eq!(&salvaged, c.trail());
        assert!(q.is_clean());
        assert_eq!(q.kept, 2);
    }
}
