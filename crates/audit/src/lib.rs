//! # Audit trails
//!
//! The audit substrate of the paper (§3.4): log entries (Def. 4),
//! chronological trails (Def. 5), case projection, a line-oriented text
//! codec, a hash-chained integrity layer simulating secure logging
//! \[18,19\], and the Fig. 4 sample trail.
//!
//! ```
//! use audit::samples::figure4_trail;
//! use cows::sym;
//!
//! let trail = figure4_trail();
//! assert_eq!(trail.project_case(sym("HT-1")).len(), 16);
//! ```

pub mod chain;
pub mod codec;
pub mod entry;
pub mod routing;
pub mod salvage;
pub mod samples;
pub mod stats;
pub mod tail;
pub mod time;
pub mod trail;

pub use chain::{ChainedTrail, IntegrityViolation};
pub use codec::{format_trail, parse_trail, ParseErrorKind, TrailParseError};
pub use entry::{LogEntry, TaskStatus};
pub use routing::{case_key, partition_of};
pub use salvage::{
    parse_trail_salvage, parse_trail_salvage_traced, salvage_chained, OutOfOrderArrival,
    Quarantine, QuarantineReason, QuarantinedLine,
};
pub use stats::{trail_stats, TrailStats};
pub use time::Timestamp;
pub use trail::AuditTrail;
