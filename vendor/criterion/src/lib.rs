//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Keeps the workspace's `benches/` targets compiling and runnable with
//! no registry access: the statistical machinery is replaced by a short
//! fixed-iteration timing loop that prints one line per benchmark. The
//! serious numbers in this repo come from `crates/bench/src/bin/report.rs`
//! (which does its own timing); these bench targets are smoke-level.

use std::fmt::Display;
use std::time::Instant;

/// Benchmarks per-`iter` timing with a handful of passes.
pub struct Bencher {
    iters: u32,
    last_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up pass, then the timed passes.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / f64::from(self.iters);
    }
}

/// Throughput annotation, accepted and echoed but not rate-normalized.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 3,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let name = name.into();
        run_one(&name, 3, None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion floors at 10 samples; this harness just bounds work.
        self.sample_size = (n as u32).clamp(1, 10);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, iters: u32, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        iters,
        last_ns: 0.0,
    };
    f(&mut bencher);
    match throughput {
        Some(Throughput::Elements(n)) if bencher.last_ns > 0.0 => {
            let rate = n as f64 / (bencher.last_ns / 1e9);
            println!(
                "bench {id}: {:.0} ns/iter ({rate:.0} elem/s)",
                bencher.last_ns
            );
        }
        _ => println!("bench {id}: {:.0} ns/iter", bencher.last_ns),
    }
}

/// Define a function running each listed benchmark with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::new("f", 1), &3, |b, &x| {
                b.iter(|| x * 2);
                ran += 1;
            });
            g.finish();
        }
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
        assert_eq!(ran, 1);
    }
}
