//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no registry access, so the
//! external dependencies are vendored as minimal API-compatible shims (see
//! `vendor/README.md`). This one wraps `std::sync` primitives behind
//! `parking_lot`'s poison-free interface: `lock()`/`read()`/`write()`
//! return guards directly, recovering the inner data if a previous holder
//! panicked (parking_lot has no poisoning at all, so recovery is the
//! faithful translation).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
