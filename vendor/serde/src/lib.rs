//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types as
//! forward-looking API surface, but ships no serializer implementation
//! (there is no `serde_json`/`bincode` in the dependency tree), so the
//! traits can never actually run. This shim keeps the trait bounds and
//! derive attributes compiling: `Serialize` funnels into
//! [`Serializer::serialize_opaque`] and a derived `Deserialize` reports
//! itself unsupported through [`de::Error::custom`]. The hand-written
//! `Symbol` impls in `cows` use the string fast paths, which behave
//! faithfully should a real serializer ever be vendored.

/// A type that can hand itself to a [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The driver side of serialization. Real serde has a wide method family;
/// this shim keeps the two entry points the workspace's impls call.
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;

    /// Serialize a borrowed string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

    /// Serialize a value whose structure this shim does not model.
    fn serialize_opaque(self) -> Result<Self::Ok, Self::Error>;
}

/// A type that can be built back from a [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// The driver side of deserialization.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    /// Produce a string borrowed from the input.
    fn deserialize_str(self) -> Result<&'de str, Self::Error>;
}

pub mod ser {
    /// Errors a [`super::Serializer`] can raise.
    pub trait Error: Sized {
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    /// Errors a [`super::Deserializer`] can raise.
    pub trait Error: Sized {
        fn custom<T: core::fmt::Display>(msg: T) -> Self;
    }

    /// Helper the inert derive expansion calls: a derived `Deserialize`
    /// has no field decoding logic, so it fails with a typed error.
    pub fn unsupported<'de, D: super::Deserializer<'de>>(_deserializer: D) -> D::Error {
        Error::custom("stub serde derive cannot deserialize")
    }
}

impl<'de> Deserialize<'de> for &'de str {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_str()
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(deserializer.deserialize_str()?.to_owned())
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
