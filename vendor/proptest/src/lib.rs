//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro, integer-range / regex-string / tuple / `Just` /
//! `prop_oneof!` / `prop::collection::vec` strategies, `prop_map`,
//! `BoxedStrategy`, and the `prop_assert*` family. Values are generated
//! from a deterministic per-test RNG (seeded by test name, so failures
//! reproduce); there is no shrinking — a failing case reports the case
//! number and message as-is.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator behind all strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the test's name so each test gets a stable stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values. No shrinking: `generate` is the whole
/// interface, everything else is adapters.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O + Clone> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategies {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

// ---------------------------------------------------------------------------
// Regex-string strategies
// ---------------------------------------------------------------------------

/// One parsed regex atom with its repetition bounds.
#[derive(Clone)]
enum Atom {
    /// `.` — any char except newline.
    Any,
    /// `[...]` or a literal — inclusive char ranges to pick from.
    Class(Vec<(char, char)>),
}

#[derive(Clone)]
struct Pattern {
    atoms: Vec<(Atom, u32, u32)>,
}

/// Parse the tiny regex dialect the workspace's patterns use: literals,
/// `.`, character classes with ranges and `\`-escapes, and `{m}` /
/// `{m,n}` quantifiers. Anything fancier panics loudly at test start.
fn parse_pattern(pattern: &str) -> Pattern {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        i += 1;
                        let hi = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        i += 1;
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in `{pattern}`"
                );
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::Class(vec![(c, c)])
            }
            c => {
                assert!(
                    !"(){}|?*+^$".contains(c),
                    "regex feature `{c}` in `{pattern}` is not supported by the proptest stub"
                );
                i += 1;
                Atom::Class(vec![(c, c)])
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            i += 1;
            let start = i;
            while chars[i] != '}' {
                i += 1;
            }
            let body: String = chars[start..i].iter().collect();
            i += 1; // consume '}'
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    Pattern { atoms }
}

fn sample_any_char(rng: &mut TestRng) -> char {
    loop {
        let c = match rng.below(100) {
            // Mostly printable ASCII: the parsers' main diet.
            0..=69 => char::from(32 + (rng.below(95) as u8)),
            // Some ASCII control characters (never newline, per `.`).
            70..=79 => char::from(rng.below(32) as u8),
            // Latin-1 and general BMP spread.
            80..=89 => char::from_u32(0xA0 + rng.below(0x500) as u32).unwrap_or('¿'),
            // Anywhere in the scalar-value space, surrogates rejected.
            _ => match char::from_u32(rng.below(0x11_0000) as u32) {
                Some(c) => c,
                None => continue,
            },
        };
        if c != '\n' {
            return c;
        }
    }
}

impl Strategy for Pattern {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in &self.atoms {
            let n = *min + rng.below(u64::from(*max - *min) + 1) as u32;
            for _ in 0..n {
                match atom {
                    Atom::Any => out.push(sample_any_char(rng)),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                        let span = (hi as u32) - (lo as u32) + 1;
                        let c = char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32)
                            .expect("class range stays in scalar values");
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsing per case is cheap relative to the test bodies; keeps
        // `&str` itself Clone/Copy as the macro requires.
        parse_pattern(self).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Lengths accepted by [`vec`].
        pub trait SizeRange: Clone {
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for std::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.clone().generate(rng)
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.clone().generate(rng)
            }
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        #[derive(Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        /// `prop::collection::vec(strategy, length_range)`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A real assertion failure: the property does not hold.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    pub fn reject(msg: impl std::fmt::Display) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The test-block macro. Each property becomes a `#[test]` running
/// `config.cases` deterministic cases; rejects (`prop_assume!`) skip the
/// case, failures panic with the case number and message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr);) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => case += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(16).max(1024),
                            "proptest stub: too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case} of {} failed: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_patterns_generate_within_their_classes() {
        let mut rng = crate::TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let t = Strategy::generate(&"[\\[\\]A-Za-z0-9/*.]{0,40}", &mut rng);
            assert!(t.chars().count() <= 40);
            assert!(
                t.chars()
                    .all(|c| "[]/*.".contains(c) || c.is_ascii_alphanumeric()),
                "{t:?}"
            );

            let dot = Strategy::generate(&".{0,200}", &mut rng);
            assert!(dot.chars().count() <= 200);
            assert!(!dot.contains('\n'));

            let digits = Strategy::generate(&"[0-9]{8,14}", &mut rng);
            assert!((8..=14).contains(&digits.chars().count()));
            assert!(digits.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&(0u64..1000), &mut a),
                Strategy::generate(&(0u64..1000), &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro pipeline itself: strategies, assume, assertions.
        #[test]
        fn macro_pipeline_works(x in 0u64..100, v in prop::collection::vec(0u32..10, 1..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn oneof_and_map_compose(s in prop_oneof![
            Just(0u32),
            (1u32..5).prop_map(|i| i * 10),
        ]) {
            prop_assert!(s == 0 || (10..50).contains(&s), "{}", s);
        }
    }
}
