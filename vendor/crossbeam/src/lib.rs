//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Only the `crossbeam::thread::scope` API surface this workspace uses is
//! provided, implemented on `std::thread::scope` (stable since 1.63).
//! Semantics match crossbeam where the workspace relies on them: spawned
//! threads may borrow the enclosing stack frame, and `scope` returns
//! `Err` instead of unwinding when any unjoined child panicked.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The result of a completed scope or joined thread: `Err` carries the
    /// panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to the closure given to [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a placeholder scope
        /// argument (crossbeam passes `&Scope`; every in-tree caller
        /// ignores it, and `&()` keeps this shim free of self-referential
        /// lifetimes).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&())),
            }
        }
    }

    /// Handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// are joined before `scope` returns. A panicking child (or closure)
    /// yields `Err` with the payload rather than unwinding the caller.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope, 'r> FnOnce(&'r Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                f(&wrapper)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_the_stack() {
        let hits = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panics_surface_as_err() {
        let out = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(out.is_err());
    }
}
