//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides the exact API surface the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen, gen_range, gen_bool}` —
//! over a xoshiro256** generator seeded through SplitMix64. The stream
//! differs from upstream `StdRng` (ChaCha12), which is fine here: every
//! in-tree consumer is self-consistent (generate-then-check within one
//! process) and no committed fixture encodes an upstream rand stream.
//! Determinism per seed is what matters, and that is guaranteed.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, deterministic per seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a type with a standard distribution (`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive integer range.
    /// Panics on an empty range, matching upstream.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator. Not the upstream ChaCha12
    /// `StdRng` stream — see the crate docs for why that is acceptable.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding recipe.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=3u64);
            assert!((1..=3).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
