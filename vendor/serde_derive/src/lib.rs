//! Inert `#[derive(Serialize, Deserialize)]` for the offline serde
//! stand-in (see `vendor/README.md`).
//!
//! The expansion is deliberately structureless: serialization funnels into
//! `Serializer::serialize_opaque` and deserialization fails with a typed
//! error, because nothing in the workspace ever drives either trait (there
//! is no serializer implementation in the dependency tree). Written
//! without `syn`/`quote`: the only parsing needed is the type's name.
//!
//! Generic types are rejected with a compile error rather than silently
//! mis-expanded; no current derive target is generic.

use proc_macro::{TokenStream, TokenTree};

/// Extract the identifier following the `struct`/`enum`/`union` keyword,
/// plus whether a generic parameter list follows it.
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        let TokenTree::Ident(ident) = &tt else {
            continue;
        };
        let kw = ident.to_string();
        if kw != "struct" && kw != "enum" && kw != "union" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            return Err(format!("`{kw}` not followed by a name"));
        };
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '<' {
                return Err(format!(
                    "stub serde derive does not support generic type `{name}`; \
                     write the impl by hand"
                ));
            }
        }
        return Ok(name.to_string());
    }
    Err("no struct/enum/union found".to_string())
}

fn expand(input: TokenStream, template: fn(&str) -> String) -> TokenStream {
    match type_name(input) {
        Ok(name) => template(&name)
            .parse()
            .expect("stub derive emits valid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, |name| {
        format!(
            "#[automatically_derived]
             impl ::serde::Serialize for {name} {{
                 fn serialize<S: ::serde::Serializer>(
                     &self,
                     serializer: S,
                 ) -> ::core::result::Result<S::Ok, S::Error> {{
                     serializer.serialize_opaque()
                 }}
             }}"
        )
    })
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, |name| {
        format!(
            "#[automatically_derived]
             impl<'de> ::serde::Deserialize<'de> for {name} {{
                 fn deserialize<D: ::serde::Deserializer<'de>>(
                     deserializer: D,
                 ) -> ::core::result::Result<Self, D::Error> {{
                     ::core::result::Result::Err(::serde::de::unsupported(deserializer))
                 }}
             }}"
        )
    })
}
