//! Umbrella crate for the purpose-control reproduction workspace.
//!
//! Re-exports every workspace crate so the examples and integration tests can
//! use a single dependency. Downstream users should depend on the individual
//! crates instead.

pub use audit;
pub use bpmn;
pub use cows;
pub use obs;
pub use petri;
pub use policy;
pub use purpose_control;
pub use workload;
