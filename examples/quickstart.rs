//! Quickstart: purpose control in ~60 lines.
//!
//! Build a tiny order-handling process, a data protection policy and an
//! audit trail, then ask the auditor whether the data were processed for
//! the intended purpose.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use audit::codec::parse_trail;
use bpmn::model::ProcessBuilder;
use policy::parse::parse_policy;
use policy::samples::hospital_roles;
use policy::PolicyContext;
use purpose_control::auditor::{Auditor, ProcessRegistry};

fn main() {
    // 1. The organizational process implementing the purpose "fulfillment":
    //    receive → pick → ship.
    let mut b = ProcessBuilder::new("order_fulfillment");
    let p = b.pool("Clerk");
    let s = b.start(p, "Start");
    let receive = b.task(p, "Receive");
    let pick = b.task(p, "Pick");
    let ship = b.task(p, "Ship");
    let e = b.end(p, "End");
    b.chain(&[s, receive, pick, ship, e]);
    let process = b.build().expect("valid model");

    // 2. A data protection policy (Def. 1) in the text format.
    let policy = parse_policy(
        "allow role:Clerk read [*]Order for fulfillment\n\
         allow role:Clerk write [*]Order for fulfillment\n",
    )
    .expect("policy parses");

    // 3. Context: who holds which role, which case implements what.
    let mut ctx = PolicyContext::new(hospital_roles());
    ctx.roles_mut().add_role("Clerk");
    ctx.assign_role("carol", "Clerk");

    // 4. Register the process as the implementation of the purpose.
    let mut registry = ProcessRegistry::new();
    registry.register("fulfillment", process);
    registry.add_case_prefix("ORD-", "fulfillment");
    let auditor = Auditor::new(registry, policy, ctx);

    // 5. Two audit trails: one follows the process, one re-purposes the
    //    data (Ship never happened; the clerk browsed the order instead).
    let good = parse_trail(
        "carol Clerk read [Acme]Order Receive ORD-1 202607060900 success\n\
         carol Clerk read [Acme]Order Pick ORD-1 202607060905 success\n\
         carol Clerk write [Acme]Order Ship ORD-1 202607060910 success\n",
    )
    .expect("trail parses");
    let bad = parse_trail(
        "carol Clerk read [Acme]Order Pick ORD-2 202607061000 success\n\
         carol Clerk read [Acme]Order Pick ORD-2 202607061005 success\n",
    )
    .expect("trail parses");

    for (name, trail) in [
        ("ORD-1 (well-behaved)", &good),
        ("ORD-2 (re-purposed)", &bad),
    ] {
        let report = auditor.audit(trail);
        println!("=== {name} ===");
        print!("{report}");
        for case in &report.cases {
            println!(
                "  case {}: {}",
                case.case,
                match &case.outcome {
                    purpose_control::CaseOutcome::Compliant { can_complete } => format!(
                        "compliant ({})",
                        if *can_complete {
                            "process complete"
                        } else {
                            "in progress"
                        }
                    ),
                    purpose_control::CaseOutcome::Infringement {
                        infringement,
                        severity,
                    } => format!(
                        "INFRINGEMENT at entry {} (expected one of {:?}), severity {:.2}",
                        infringement.entry_index, infringement.expected, severity.score
                    ),
                    other => format!("{other:?}"),
                }
            );
        }
        println!();
    }
}
