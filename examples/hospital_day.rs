//! A Geneva-scale day of hospital auditing (§1).
//!
//! Generates a synthetic day of hospital activity — by default 20,000
//! record opens, the figure the paper quotes for the Geneva University
//! Hospitals — with a small fraction of injected infringements, audits it
//! in parallel, and scores detection against ground truth.
//!
//! ```text
//! cargo run --release --example hospital_day [target_entries] [threads]
//! ```

use bpmn::models::{clinical_trial, healthcare_treatment};
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};
use purpose_control::auditor::{Auditor, CaseOutcome, ProcessRegistry};
use purpose_control::parallel::audit_parallel;
use std::time::Instant;
use workload::hospital::{generate_day, HospitalConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let target_entries: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });

    println!("generating a hospital day with ~{target_entries} record opens…");
    let t0 = Instant::now();
    let day = generate_day(
        &HospitalConfig {
            target_entries,
            ..HospitalConfig::default()
        },
        42,
    );
    println!(
        "  {} entries across {} cases ({} with injected infringements) in {:.1?}",
        day.trail.len(),
        day.truth.len(),
        day.attacked_cases(),
        t0.elapsed()
    );

    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    let auditor = Auditor::new(registry, extended_hospital_policy(), hospital_context());

    println!("auditing with {threads} worker thread(s)…");
    let t1 = Instant::now();
    let report = audit_parallel(&auditor, &day.trail, threads);
    let took = t1.elapsed();
    println!(
        "  audited {} cases / {} entries in {took:.1?}  ({:.0} entries/s)",
        report.cases.len(),
        day.trail.len(),
        day.trail.len() as f64 / took.as_secs_f64()
    );

    // Detection vs ground truth.
    let (mut tp, mut fp, mut fn_, mut tn) = (0usize, 0usize, 0usize, 0usize);
    for case in &report.cases {
        let attacked = day
            .truth
            .get(&case.case)
            .map(|t| t.injected.is_some())
            .unwrap_or(false);
        let flagged = matches!(case.outcome, CaseOutcome::Infringement { .. });
        match (attacked, flagged) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            (false, false) => tn += 1,
        }
    }
    println!();
    println!("detection vs ground truth:");
    println!("  true positives  {tp}");
    println!("  false positives {fp}");
    println!(
        "  false negatives {fn_}   (reordering within one task and other model-invisible edits)"
    );
    println!("  true negatives  {tn}");
    if tp + fn_ > 0 {
        println!("  recall    {:.1}%", 100.0 * tp as f64 / (tp + fn_) as f64);
    }
    if tp + fp > 0 {
        println!("  precision {:.1}%", 100.0 * tp as f64 / (tp + fp) as f64);
    }
    println!();
    println!("top of the severity triage queue:");
    for case in report.triage().iter().take(5) {
        if let CaseOutcome::Infringement {
            infringement,
            severity,
        } = &case.outcome
        {
            println!(
                "  {}: severity {:.2}, deviation at entry {} ({})",
                case.case, severity.score, infringement.entry_index, infringement.entry
            );
        }
    }
}
