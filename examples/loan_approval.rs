//! Purpose control outside healthcare: a bank's loan-approval process.
//!
//! Shows the full file-based workflow a deploying organization would use —
//! process, policy and trail all in their text formats — plus the
//! extensions: severity triage, the §4 temporal constraint, the lenient
//! replay for unlogged human activities, and the multitasking lint.
//!
//! ```text
//! cargo run --example loan_approval
//! ```

use audit::codec::parse_trail;
use bpmn::encode::encode;
use bpmn::parse::parse_process;
use policy::parse::parse_policy;
use policy::{PolicyContext, RoleHierarchy};
use purpose_control::auditor::{Auditor, CaseOutcome, ProcessRegistry};
use purpose_control::lenient::{check_case_lenient, LenientOptions};
use purpose_control::multitask::multitasking_report;
use purpose_control::replay::CheckOptions;

const SIMPLE: &str = "\
process loan_approval

pool Officer
  start Apply
  task Intake
  xor Route
  task QuickScore
  task FullReview on_error Intake
  xor Merge
  task Decide
  end Done

flows
  Apply -> Intake -> Route
  Route -> QuickScore
  Route -> FullReview
  QuickScore -> Merge
  FullReview -> Merge
  Merge -> Decide -> Done
";

const POLICY: &str = "\
allow role:Officer read [*]LoanFile for loanapproval
allow role:Officer write [*]LoanFile for loanapproval
allow role:Officer read [*]CreditReport for loanapproval
";

const TRAIL: &str = "\
# LN-1: a by-the-book application
amy Officer read [Smith]LoanFile Intake LN-1 202607060900 success
amy Officer read [Smith]CreditReport QuickScore LN-1 202607060910 success
amy Officer write [Smith]LoanFile Decide LN-1 202607060930 success
# LN-2: the officer jumped straight to a decision
ben Officer write [Jones]LoanFile Decide LN-2 202607061000 success
# LN-3: intake logged, then a decision — the full review happened in a
# meeting and never hit the IT system
amy Officer read [Doe]LoanFile Intake LN-3 202607061100 success
amy Officer write [Doe]LoanFile Decide LN-3 202607061130 success
";

fn main() {
    let model = parse_process(SIMPLE).expect("process parses");
    let policy = parse_policy(POLICY).expect("policy parses");
    let trail = parse_trail(TRAIL).expect("trail parses");

    let mut ctx = PolicyContext::new(RoleHierarchy::new());
    ctx.roles_mut().add_role("Officer");
    ctx.assign_role("amy", "Officer");
    ctx.assign_role("ben", "Officer");

    let mut registry = ProcessRegistry::new();
    registry.register("loanapproval", model.clone());
    registry.add_case_prefix("LN-", "loanapproval");
    let auditor = Auditor::new(registry, policy, ctx);

    println!("=== full audit ===");
    let report = auditor.audit(&trail);
    print!("{report}");
    for case in &report.cases {
        println!(
            "  {}: {}",
            case.case,
            match &case.outcome {
                CaseOutcome::Compliant { can_complete } => format!(
                    "compliant ({})",
                    if *can_complete {
                        "complete"
                    } else {
                        "in progress"
                    }
                ),
                CaseOutcome::Infringement {
                    infringement,
                    severity,
                } => format!(
                    "INFRINGEMENT at entry {} (severity {:.2}, expected {:?})",
                    infringement.entry_index, severity.score, infringement.expected
                ),
                other => format!("{other:?}"),
            }
        );
    }

    // LN-3 deviates because FullReview (or QuickScore) was never logged.
    // The §7 lenient replay asks: is there a small set of unlogged human
    // activities that explains the trail?
    println!("\n=== lenient replay of LN-3 (silent human activities, §7) ===");
    let encoded = encode(&model);
    let entries = trail.project_case(cows::sym("LN-3"));
    let lenient = check_case_lenient(
        &encoded,
        auditor.context.roles(),
        &entries,
        &LenientOptions {
            base: CheckOptions::default(),
            max_silent: 1,
        },
    )
    .expect("replay succeeds");
    println!("  verdict: {:?}", lenient.verdict);
    println!(
        "  assumed unlogged activities: {:?} (follow up with the officer)",
        lenient.assumed
    );

    // The §4 mitigation lens: who is juggling several tasks at once?
    println!("\n=== multitasking lint (§4 mimicry mitigation) ===");
    let findings = multitasking_report(&trail);
    if findings.is_empty() {
        println!("  no overlapping task spans");
    }
    for f in findings {
        println!(
            "  {} works {}::{} and {}::{} concurrently ({} min overlap)",
            f.user, f.a.case, f.a.task, f.b.case, f.b.task, f.overlap_minutes
        );
    }
}
