//! The paper's running example, end to end (§2–§4).
//!
//! Builds the Fig. 1 healthcare-treatment and Fig. 2 clinical-trial
//! processes, the Fig. 3 policy, and replays the Fig. 4 audit trail:
//! Jane's treatment case HT-1 is a valid execution, while the HT-11 access
//! to her EPR — made by the cardiologist to feed his clinical trial — is
//! detected as a privacy infringement.
//!
//! ```text
//! cargo run --example healthcare_audit
//! ```

use audit::samples::{figure4_expanded, figure4_trail};
use bpmn::models::{clinical_trial, healthcare_treatment};
use cows::sym;
use policy::object::ObjectId;
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};
use purpose_control::auditor::{Auditor, CaseOutcome, ProcessRegistry};
use purpose_control::replay::{check_case, CheckOptions};

fn main() {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    let auditor = Auditor::new(registry, extended_hospital_policy(), hospital_context());

    let trail = figure4_trail();
    println!("Fig. 4 audit trail ({} entries):", trail.len());
    for e in &trail {
        println!("  {e}");
    }
    println!();

    // §4: investigate Jane's EPR — only the cases that touched it matter.
    let jane = ObjectId::of_subject("Jane", "EPR");
    println!("--- Investigating object {jane} ---");
    let report = auditor.audit_object(&trail, &jane);
    print!("{report}");
    println!();

    // Walk HT-1 step by step, reproducing the Fig. 6 transition system.
    println!("--- Replaying case HT-1 (Fig. 6) ---");
    let process = auditor
        .registry
        .process_for(treatment())
        .expect("registered");
    let entries = trail.project_case(sym("HT-1"));
    let opts = CheckOptions {
        record_trace: true,
        ..CheckOptions::default()
    };
    let out = check_case(&process.encoded, auditor.context.roles(), &entries, &opts)
        .expect("replay succeeds");
    for step in &out.steps {
        let entry = entries[step.entry_index];
        println!(
            "  entry {:2} {:<28} -> {} configuration(s), token tasks {:?}",
            step.entry_index,
            format!("{} {} ({})", entry.role, entry.task, entry.status),
            step.configurations,
            step.token_tasks
        );
    }
    println!("  verdict: {:?}", out.verdict);
    println!();

    // The full audit, including the expanded sweep of Fig. 4's elided rows.
    println!("--- Full audit of the expanded Fig. 4 trail ---");
    let expanded = figure4_expanded();
    let report = auditor.audit(&expanded);
    print!("{report}");
    println!();
    println!("Triage queue (most severe first):");
    for case in report.triage().iter().take(10) {
        if let CaseOutcome::Infringement { severity, .. } = &case.outcome {
            println!(
                "  {}: severity {:.2} ({} unaccounted entries, {} subjects)",
                case.case, severity.score, severity.unaccounted_entries, severity.subjects_touched
            );
        }
    }
}
