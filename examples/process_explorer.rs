//! Explore a BPMN process through its COWS encoding (Appendix A).
//!
//! Prints, for each appendix example of the paper (Figs. 7–10), the COWS
//! service of every BPMN element, the full labeled transition system, and
//! the `WeakNext` frontier from the initial state — the raw material of
//! Algorithm 1.
//!
//! ```text
//! cargo run --example process_explorer [fig7|fig8|fig9|fig10]
//! ```

use bpmn::encode::encode;
use bpmn::models::{fig10_message_cycle, fig7_sequence, fig8_exclusive, fig9_error};
use bpmn::ProcessModel;
use cows::lts::{explore, ExploreLimits};
use cows::weaknext::{weak_next, WeakNextLimits};

fn explore_model(model: &ProcessModel) {
    println!("=== {} ===", model.name());
    println!(
        "pools: {:?}",
        model
            .pools()
            .iter()
            .map(|p| p.role.to_string())
            .collect::<Vec<_>>()
    );

    let encoded = encode(model);
    println!("\nCOWS services (one per BPMN element, composed in parallel):");
    if let cows::Service::Parallel(children) = &encoded.service {
        for (node, service) in model.nodes().iter().zip(children) {
            println!("  [[{}]] = {service}", node.name);
        }
    }

    let lts = explore(&encoded.service, ExploreLimits::default()).expect("finite LTS");
    println!(
        "\nLTS: {} states, {} transitions",
        lts.state_count(),
        lts.edge_count()
    );
    for sid in 0..lts.state_count() {
        for (label, next) in lts.edges_from(sid) {
            println!("  St{sid} --{label}--> St{next}");
        }
    }

    let m0 = encoded.initial();
    let succ = weak_next(&m0, &encoded.observability, WeakNextLimits::default())
        .expect("well-founded process");
    println!(
        "\nWeakNext(initial): {} observable successor(s)",
        succ.len()
    );
    for w in &succ {
        let tokens: Vec<String> = w
            .state
            .token_tasks(&encoded.observability)
            .iter()
            .map(|(r, q)| format!("{r}.{q}"))
            .collect();
        println!("  {}  ->  token tasks {tokens:?}", w.observation);
    }
    println!();
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let models: Vec<ProcessModel> = match which.as_str() {
        "fig7" => vec![fig7_sequence()],
        "fig8" => vec![fig8_exclusive()],
        "fig9" => vec![fig9_error()],
        "fig10" => vec![fig10_message_cycle()],
        _ => vec![
            fig7_sequence(),
            fig8_exclusive(),
            fig9_error(),
            fig10_message_cycle(),
        ],
    };
    for m in &models {
        explore_model(m);
    }
}
