//! Online purpose control: alarms while the logs stream in.
//!
//! Replays the expanded Fig. 4 trail entry by entry through the
//! [`purpose_control::live::LiveAuditor`], printing each alarm the moment
//! its entry arrives, then closes the day with completed-case retirement
//! and an organizational drift report (prescribed process vs mined
//! behavior).
//!
//! ```text
//! cargo run --example live_monitor
//! ```

use audit::samples::figure4_expanded;
use bpmn::models::{clinical_trial, healthcare_treatment};

use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};
use purpose_control::auditor::{Auditor, ProcessRegistry};
use purpose_control::drift::{case_task_log, drift_report};
use purpose_control::live::{LiveAuditor, LiveEvent};

fn main() {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    let auditor = Auditor::new(registry, extended_hospital_policy(), hospital_context());
    let mut monitor = LiveAuditor::new(auditor);

    let trail = figure4_expanded();
    println!("streaming {} log entries…\n", trail.len());
    let mut accepted = 0usize;
    for e in &trail {
        match monitor.observe(e).expect("monitoring succeeds") {
            LiveEvent::Accepted { .. } => accepted += 1,
            LiveEvent::Alarm {
                case,
                infringement,
                severity,
            } => {
                println!(
                    "🔔 ALARM [{}] case {case}: `{}` is not a valid step (expected {:?}); severity {:.2}",
                    e.time, infringement.entry, infringement.expected, severity.score
                );
            }
            LiveEvent::AfterAlarm { case } => {
                println!("   (case {case} already under alarm; entry counted)");
            }
            LiveEvent::Unresolved { case } => {
                println!("?? case {case} has no registered purpose");
            }
        }
    }
    println!(
        "\n{accepted} entries accepted, {} alarms",
        monitor.alarms().len()
    );

    let (retired, errors) = monitor.retire_completed();
    println!(
        "retired {} completed case(s): {:?}; {} still open",
        retired.len(),
        retired.iter().map(ToString::to_string).collect::<Vec<_>>(),
        monitor.open_cases()
    );
    for (case, e) in &errors {
        println!("case {case}: completion check failed ({e}); kept open");
    }

    // End-of-day organizational lens: has treatment practice drifted from
    // the prescribed Fig. 1 process?
    println!("\n=== drift report for purpose `treatment` ===");
    let model = healthcare_treatment();
    let logs: Vec<Vec<cows::Symbol>> = trail
        .cases()
        .into_iter()
        .filter(|c| c.as_str().starts_with("HT-"))
        .map(|c| case_task_log(&trail.project_case(c)))
        .collect();
    let drift = drift_report(&model, &logs);
    println!("cases analyzed: {}", drift.cases);
    println!(
        "dead tasks (prescribed, never executed): {:?}",
        drift
            .dead_tasks
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    println!(
        "foreign tasks (executed, not prescribed): {:?}",
        drift
            .foreign_tasks
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    println!(
        "illegal direct successions: {:?}",
        drift
            .illegal_successions
            .iter()
            .map(|(a, b)| format!("{a} > {b}"))
            .collect::<Vec<_>>()
    );
}
