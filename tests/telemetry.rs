//! Integration tests for the telemetry subsystem: registry exactness under
//! concurrency, evidence-trace determinism across runs and engines, and
//! conformance of the exported documents to the committed schemas.

use audit::samples::figure4_trail;
use bpmn::encode::encode;
use bpmn::models::healthcare_treatment;
use obs::json::{parse_json, validate};
use obs::Registry;
use policy::samples::hospital_roles;
use policy::{Policy, PolicyContext};
use purpose_control::auditor::{Auditor, ProcessRegistry};
use purpose_control::replay::{check_case, CheckOptions, Engine};
use std::path::Path;
use std::sync::Arc;

/// Eight threads hammer thread-owned shards; after every flush the
/// aggregate must hold the *exact* totals — sharding trades contention for
/// a deferred merge, never for accuracy.
#[test]
fn registry_is_exact_under_eight_threads() {
    const THREADS: u64 = 8;
    const OPS: u64 = 10_000;
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                let mut shard = registry.shard();
                for i in 0..OPS {
                    shard.add_counter("ops_total", 1);
                    shard.add_counter("bytes_total", 3);
                    shard.observe("op_size", (t * OPS + i) % 1_000);
                    shard.set_gauge("last_thread", t as f64);
                }
                shard.flush(&registry);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(registry.counter_value("ops_total"), THREADS * OPS);
    assert_eq!(registry.counter_value("bytes_total"), 3 * THREADS * OPS);
    let hist = registry.histogram("op_size");
    assert_eq!(hist.count, THREADS * OPS);
    let expected_sum: u64 = (0..THREADS)
        .flat_map(|t| (0..OPS).map(move |i| (t * OPS + i) % 1_000))
        .sum();
    assert_eq!(hist.sum, expected_sum);
    assert_eq!(
        hist.buckets.iter().map(|(_, n)| n).sum::<u64>(),
        THREADS * OPS
    );
    // The gauge is last-write-wins; any thread id is a valid final value.
    let g = registry.gauge_value("last_thread");
    assert!(g >= 0.0 && g < THREADS as f64);
}

fn evidence_lines(engine: Engine) -> Vec<String> {
    let encoded = encode(&healthcare_treatment());
    let hierarchy = hospital_roles();
    let trail = figure4_trail();
    let opts = CheckOptions {
        engine,
        record_evidence: true,
        ..CheckOptions::default()
    };
    let mut lines = Vec::new();
    for case in trail.cases() {
        let entries = trail.project_case(case);
        let check = check_case(&encoded, &hierarchy, &entries, &opts).expect("replay succeeds");
        let evidence = check
            .evidence_trace(&encoded, &entries)
            .expect("record_evidence fills evidence");
        lines.push(evidence.to_json_line());
    }
    lines
}

/// The Fig. 4 evidence traces are byte-identical across runs and across
/// `--engine automaton|direct` (modulo the provenance `engine` field):
/// the trace records what Algorithm 1 did, and both engines are proven to
/// do the same thing.
#[test]
fn figure4_evidence_is_deterministic_and_engine_identical() {
    let direct = evidence_lines(Engine::Direct);
    let direct_again = evidence_lines(Engine::Direct);
    assert_eq!(direct, direct_again, "direct traces drift across runs");

    let automaton = evidence_lines(Engine::Automaton);
    let automaton_again = evidence_lines(Engine::Automaton);
    assert_eq!(
        automaton, automaton_again,
        "automaton traces drift across runs"
    );

    let strip_engine = |lines: &[String]| -> Vec<String> {
        lines
            .iter()
            .map(|l| {
                l.replace("\"engine\":\"direct\"", "\"engine\":\"_\"")
                    .replace("\"engine\":\"automaton\"", "\"engine\":\"_\"")
            })
            .collect()
    };
    assert_eq!(
        strip_engine(&direct),
        strip_engine(&automaton),
        "evidence differs between engines"
    );

    // The running example contains real violations; their traces must end
    // at the violating entry.
    let violating: Vec<&String> = direct
        .iter()
        .filter(|l| l.contains("\"verdict\":\"infringement\""))
        .collect();
    assert!(!violating.is_empty(), "Fig. 4 must contain infringements");
    for line in violating {
        assert!(line.contains("\"violation\":{"), "{line}");
        assert!(line.contains("\"kind\":"), "{line}");
    }
}

fn schema(name: &str) -> obs::json::JsonValue {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("schemas")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse_json(&text).expect("committed schema parses")
}

/// A real (small) audit's metrics export conforms to the committed schema —
/// which requires every vocabulary name and forbids unknown ones.
#[test]
fn metrics_export_matches_committed_schema() {
    let metrics = Arc::new(Registry::new());
    purpose_control::register_audit_metrics(&metrics);

    let mut processes = ProcessRegistry::new();
    processes.register("treatment", healthcare_treatment());
    processes.add_case_prefix("HT-", "treatment");
    let mut auditor = Auditor::new(
        processes,
        Policy::new(),
        PolicyContext::new(hospital_roles()),
    );
    auditor.metrics = Some(Arc::clone(&metrics));
    let trail = figure4_trail();
    audit::trail_stats(&trail).export_into(&metrics);
    let report = auditor.audit(&trail);
    assert!(!report.cases.is_empty());
    cows::semantics::cache_stats().export_into(&metrics);

    let doc = parse_json(&metrics.to_json()).expect("metrics export parses");
    let errors = validate(&doc, &schema("metrics.schema.json"));
    assert!(errors.is_empty(), "schema violations: {errors:?}");
    assert_eq!(
        doc.get("counters")
            .and_then(|c| c.get("audit_cases_total"))
            .and_then(|v| v.as_f64()),
        Some(report.cases.len() as f64)
    );
}

/// Every evidence JSONL line conforms to the committed trace schema.
#[test]
fn trace_lines_match_committed_schema() {
    let trace_schema = schema("trace.schema.json");
    for line in evidence_lines(Engine::Automaton) {
        let doc = parse_json(&line).expect("trace line parses");
        let errors = validate(&doc, &trace_schema);
        assert!(errors.is_empty(), "schema violations in {line}: {errors:?}");
    }
}
