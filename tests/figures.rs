//! Figure-by-figure reproduction of the paper's artifacts (the per-experiment
//! index F1–F10 of `DESIGN.md`).

use audit::samples::{figure4_trail, FIGURE4_TEXT};
use bpmn::encode::encode;
use bpmn::models::{
    clinical_trial, fig10_message_cycle, fig7_sequence, fig8_exclusive, fig9_error,
    healthcare_treatment,
};
use cows::lts::{explore, ExploreLimits};
use cows::observe::Observation;
use cows::sym;
use cows::weaknext::{weak_next, WeakNextLimits};
use policy::object::ObjectId;
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, figure3_policy, hospital_context, treatment,
};
use purpose_control::auditor::{Auditor, CaseOutcome, ProcessRegistry};
use purpose_control::replay::{check_case, CheckOptions, Verdict};

fn hospital_auditor() -> Auditor {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    Auditor::new(registry, extended_hospital_policy(), hospital_context())
}

// --------------------------------------------------------------------------
// F1 / F2 — the process models of Figs. 1 and 2.
// --------------------------------------------------------------------------

#[test]
fn fig1_model() {
    let m = healthcare_treatment();
    assert_eq!(m.pools().len(), 4, "GP, cardiologist, lab, radiology");
    assert_eq!(m.tasks().count(), 15);
    // The referral task and the diagnosis-with-error of §2.
    assert_eq!(m.task_role(sym("T05")), Some(sym("GP")));
    assert!(m.has_error_boundaries());
    // The encoding is well-founded and has the start task GP·T01.
    let enc = encode(&m);
    let succ = weak_next(
        &enc.initial(),
        &enc.observability,
        WeakNextLimits::default(),
    )
    .unwrap();
    assert_eq!(succ.len(), 1);
    assert_eq!(succ[0].observation.to_string(), "GP.T01");
}

#[test]
fn fig2_model() {
    let m = clinical_trial();
    assert_eq!(m.tasks().count(), 5);
    let enc = encode(&m);
    let succ = weak_next(
        &enc.initial(),
        &enc.observability,
        WeakNextLimits::default(),
    )
    .unwrap();
    assert_eq!(succ.len(), 1);
    assert_eq!(succ[0].observation.to_string(), "Physician.T91");
}

// --------------------------------------------------------------------------
// F3 — the Fig. 3 policy.
// --------------------------------------------------------------------------

#[test]
fn fig3_policy() {
    let p = figure3_policy();
    assert_eq!(p.len(), 7, "Fig. 3 lists seven statements");
    let rendered = policy::parse::format_policy(&p);
    // Round-trips through the text format.
    let reparsed = policy::parse::parse_policy(&rendered).unwrap();
    assert_eq!(reparsed.len(), 7);
}

// --------------------------------------------------------------------------
// F4 — the Fig. 4 trail and the §4 verdicts.
// --------------------------------------------------------------------------

#[test]
fn fig4_trail_parses_from_its_printed_text() {
    let t = audit::codec::parse_trail(FIGURE4_TEXT).unwrap();
    assert_eq!(t.len(), 28);
    assert_eq!(audit::codec::format_trail(&t), FIGURE4_TEXT);
}

#[test]
fn fig4_replay_verdicts() {
    let auditor = hospital_auditor();
    let trail = figure4_trail();

    // "As the portion of the audit trail corresponding to HT-1 is
    // completely analyzed without deviations from the expected behavior,
    // no infringement is detected by the algorithm."
    let ht1 = auditor.check_one_case(&trail, sym("HT-1"));
    assert!(matches!(
        ht1.outcome,
        CaseOutcome::Compliant { can_complete: true }
    ));

    // "If we apply the algorithm to the portion of the audit log
    // corresponding to that case (only one entry), we can immediately see
    // that it does not correspond to a valid execution of the HT process."
    let ht11 = auditor.check_one_case(&trail, sym("HT-11"));
    match ht11.outcome {
        CaseOutcome::Infringement { infringement, .. } => {
            assert_eq!(infringement.entry_index, 0);
            assert_eq!(infringement.entry.task, sym("T06"));
            assert_eq!(infringement.expected, vec!["GP.T01".to_string()]);
        }
        other => panic!("expected infringement, got {other:?}"),
    }

    // Bob's bookkeeping under CT-1 does follow the Fig. 2 process (the
    // infringement is the HT-labeled sweep, not the trial itself), and the
    // role hierarchy maps Cardiologist onto the Physician pool.
    let ct1 = auditor.check_one_case(&trail, sym("CT-1"));
    assert!(ct1.outcome.is_compliant());
}

#[test]
fn fig4_object_investigation() {
    // §4: the object under investigation selects its cases; Jane's EPR was
    // accessed in HT-1 (valid) and HT-11 (infringing).
    let auditor = hospital_auditor();
    let report = auditor.audit_object(&figure4_trail(), &ObjectId::of_subject("Jane", "EPR"));
    assert_eq!(report.cases.len(), 2);
    assert_eq!(report.compliant_cases(), 1);
    assert_eq!(report.infringing_cases(), 1);
}

// --------------------------------------------------------------------------
// F6 — the transition system visited by Algorithm 1 on HT-1 (Fig. 6).
// --------------------------------------------------------------------------

#[test]
fn fig6_visited_states() {
    let model = healthcare_treatment();
    let encoded = encode(&model);
    let ctx = hospital_context();
    let trail = figure4_trail();
    let entries = trail.project_case(sym("HT-1"));
    let opts = CheckOptions {
        record_trace: true,
        ..CheckOptions::default()
    };
    let out = check_case(&encoded, ctx.roles(), &entries, &opts).unwrap();
    assert!(matches!(
        out.verdict,
        Verdict::Compliant { can_complete: true }
    ));
    assert_eq!(out.steps.len(), entries.len());

    // Step 1 (GP·T01): one configuration, token tasks {GP·T01} — St2.
    assert_eq!(out.steps[0].configurations, 1);
    assert_eq!(out.steps[0].token_tasks[0], vec!["GP.T01".to_string()]);

    // Step 2 (GP·T02): {GP·T02} — St3.
    assert_eq!(out.steps[1].token_tasks[0], vec!["GP.T02".to_string()]);

    // Step 3 (failure of T02 → sys·Err): the suspension state St4 with no
    // active tasks, "awaiting the proper activities (GP·T01) to restore it".
    assert_eq!(out.steps[2].configurations, 1);
    assert!(out.steps[2].token_tasks[0].is_empty());

    // Step 7 (C·T09 after T06): the OR gateway G3 was resolved; both the
    // "scans only" state (St10, {C·T09}) and the "both ordered" state
    // (St11/St12 flavor, {C·T08, C·T09}) survive — "both states are
    // considered in the next iteration".
    let step7: Vec<Vec<String>> = out.steps[6].token_tasks.clone();
    assert_eq!(step7.len(), 2, "two configurations after C.T09: {step7:?}");
    assert!(step7.contains(&vec!["Cardiologist.T09".to_string()]));
    assert!(step7.contains(&vec![
        "Cardiologist.T08".to_string(),
        "Cardiologist.T09".to_string()
    ]));

    // Step 8 (R·T10): St13 {R·T10} and St14 {C·T08, R·T10}.
    let step8 = out.steps[7].token_tasks.clone();
    assert_eq!(step8.len(), 2);
    assert!(step8.contains(&vec!["Radiologist.T10".to_string()]));
    assert!(step8.contains(&vec![
        "Cardiologist.T08".to_string(),
        "Radiologist.T10".to_string()
    ]));

    // Final step (GP·T04): a single configuration, {GP·T04} — St36.
    let last = out.steps.last().unwrap();
    assert_eq!(last.configurations, 1);
    assert_eq!(last.token_tasks[0], vec!["GP.T04".to_string()]);
}

#[test]
fn fig6_five_states_reachable_after_t06() {
    // "one can notice that five states are reachable from state St7"
    // (C·T07, C·T08 alone, C·T09 alone, and the two both-ordered states).
    let model = healthcare_treatment();
    let encoded = encode(&model);
    let ctx = hospital_context();
    let trail = figure4_trail();
    let entries = trail.project_case(sym("HT-1"));

    // Replay up to and including the C·T06 entry (index 5), then inspect
    // WeakNext of the surviving configuration.
    let prefix = &entries[..6];
    let opts = CheckOptions {
        record_trace: true,
        ..CheckOptions::default()
    };
    let out = check_case(&encoded, ctx.roles(), prefix, &opts).unwrap();
    assert!(out.verdict.is_compliant());
    assert_eq!(out.steps[5].configurations, 1, "St7 is unique");

    // Re-derive the state and count its weak successors.
    // (check_case does not expose configurations; recompute from scratch.)
    let mut confs = vec![encoded.initial()];
    for e in prefix {
        let mut next = Vec::new();
        for c in &confs {
            for w in weak_next(c, &encoded.observability, WeakNextLimits::default()).unwrap() {
                let ok = match w.observation {
                    Observation::Task { task, .. } => {
                        task == e.task && e.status == audit::TaskStatus::Success
                    }
                    Observation::Error => e.status == audit::TaskStatus::Failure,
                };
                if ok {
                    next.push(w.state);
                }
            }
            if c.running.iter().any(|&(_, q)| q == e.task) && e.status == audit::TaskStatus::Success
            {
                next.push(c.clone());
            }
        }
        next.sort_by(|a, b| (&a.running, &a.service).cmp(&(&b.running, &b.service)));
        next.dedup();
        confs = next;
    }
    assert_eq!(confs.len(), 1);
    let st7 = &confs[0];
    let succ = weak_next(st7, &encoded.observability, WeakNextLimits::default()).unwrap();
    assert_eq!(succ.len(), 5, "five states reachable from St7");
    let obs: std::collections::BTreeSet<String> =
        succ.iter().map(|w| w.observation.to_string()).collect();
    assert_eq!(
        obs,
        ["Cardiologist.T07", "Cardiologist.T08", "Cardiologist.T09"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    );
}

// --------------------------------------------------------------------------
// F7–F10 — the appendix encodings.
// --------------------------------------------------------------------------

#[test]
fn fig7_encoding_equivalent_to_appendix_text() {
    // The appendix's hand-written Fig. 7 service (parsed from its ASCII
    // form) is weakly equivalent to what the encoder produces from the
    // BPMN model — parser, encoder and equivalence checker agree.
    let enc = encode(&fig7_sequence());
    let hand = cows::parse::parse_service("(P.T!<> | *P.T?<>.(P.E!<>) | *P.E?<>)").unwrap();
    let witness = cows::equiv::weak_trace_equiv(
        &enc.service,
        &hand,
        &enc.observability,
        &cows::equiv::EquivLimits::default(),
    )
    .unwrap();
    assert_eq!(witness, None, "encoder output must match Appendix A");
}

#[test]
fn fig7_lts() {
    // Fig. 7(c): a single path St1 → St2 → St3.
    let enc = encode(&fig7_sequence());
    let lts = explore(&enc.service, ExploreLimits::default()).unwrap();
    assert_eq!(lts.state_count(), 3);
    assert_eq!(lts.edge_count(), 2);
    assert_eq!(lts.terminal_states().len(), 1);
}

#[test]
fn fig8_lts() {
    // Fig. 8(c): 8 visible states; our LTS additionally shows the two
    // kill-execution steps the paper's diagram elides (St3→St4 and
    // St4→St5 there are compound). Both exclusive branches reach ends and
    // never coexist.
    let enc = encode(&fig8_exclusive());
    let lts = explore(&enc.service, ExploreLimits::default()).unwrap();
    assert_eq!(lts.state_count(), 10);
    // τ-abstracted traces: T then exactly one of T1/T2.
    let traces = lts.observable_traces(&enc.observability, 10, 1000).unwrap();
    let complete: Vec<String> = traces
        .iter()
        .map(|t| {
            t.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    assert!(complete.contains(&"P.T P.T1".to_string()));
    assert!(complete.contains(&"P.T P.T2".to_string()));
    assert!(!complete
        .iter()
        .any(|t| t.contains("T1") && t.contains("T2")));
}

#[test]
fn fig9_lts() {
    // Fig. 9(c): after T, either the normal path to T2 or the observable
    // error to T1.
    let enc = encode(&fig9_error());
    let lts = explore(&enc.service, ExploreLimits::default()).unwrap();
    let traces = lts.observable_traces(&enc.observability, 10, 1000).unwrap();
    let rendered: Vec<String> = traces
        .iter()
        .map(|t| {
            t.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect();
    assert!(rendered.contains(&"P.T P.T2".to_string()));
    assert!(rendered.contains(&"P.T sys.Err P.T1".to_string()));
}

#[test]
fn fig10_lts() {
    // Fig. 10(c): a six-step cycle St1 → … → St6 → St1. Canonical forms
    // close the loop, so the LTS is finite even though behavior is infinite.
    let enc = encode(&fig10_message_cycle());
    let lts = explore(&enc.service, ExploreLimits::default()).unwrap();
    assert!(lts.state_count() <= 8);
    assert!(lts.terminal_states().is_empty(), "the cycle never ends");
    // The observable behavior alternates T1, T2, T1, T2…
    let enc2 = encode(&fig10_message_cycle());
    let mut m = enc2.initial();
    for expected in ["P1.T1", "P2.T2", "P1.T1", "P2.T2", "P1.T1"] {
        let succ = weak_next(&m, &enc2.observability, WeakNextLimits::default()).unwrap();
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].observation.to_string(), expected);
        m = succ[0].state.clone();
    }
}
