//! Streaming equivalence suite: the bounded-memory live monitor must reach
//! exactly the batch auditor's verdicts, for every arrival order a log
//! shipper could produce and under constant eviction pressure.
//!
//! Arrival order is the live monitor's only degree of freedom: per-case
//! entries arrive in sequence (shippers preserve intra-stream order), but
//! cross-case interleaving is arbitrary. The suite replays the Fig. 4
//! trail in its logged order plus several chaos-shuffled interleavings
//! (seeded random merges of the per-case queues), with `max_open_cases =
//! 2` so almost every entry forces an eviction or a rehydration, and
//! requires byte-identical infringement positions and severity scores.

use audit::entry::LogEntry;
use audit::samples::figure4_trail;
use audit::trail::AuditTrail;
use bpmn::models::{clinical_trial, healthcare_treatment};
use cows::symbol::Symbol;
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};
use purpose_control::auditor::{Auditor, CaseOutcome, ProcessRegistry};
use purpose_control::replay::Verdict;
use purpose_control::{shard_of, LiveAuditor, LiveConfig, ShardedMonitor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

const SEEDS: [u64; 4] = [7, 42, 1337, 2026];

fn hospital_auditor() -> Auditor {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    Auditor::new(registry, extended_hospital_policy(), hospital_context())
}

/// A random merge of the per-case entry queues: each step pops the front
/// of a randomly chosen still-nonempty case. Cross-case order is chaos;
/// per-case order is preserved — the one invariant a shipper guarantees.
fn chaos_interleave(trail: &AuditTrail, seed: u64) -> Vec<LogEntry> {
    let mut queues: Vec<VecDeque<LogEntry>> = trail
        .cases()
        .into_iter()
        .map(|c| trail.project_case(c).into_iter().cloned().collect())
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<usize> = (0..queues.len()).collect();
    let mut out = Vec::with_capacity(trail.len());
    while !live.is_empty() {
        let pick = rng.gen_range(0..live.len());
        let q = &mut queues[live[pick]];
        out.push(q.pop_front().expect("live queues are nonempty"));
        if q.is_empty() {
            live.swap_remove(pick);
        }
    }
    out
}

/// Comparable per-case verdict: compliance (with completability) or the
/// per-case index of the infringing entry plus its severity score.
fn batch_labels(auditor: &Auditor, trail: &AuditTrail) -> BTreeMap<Symbol, String> {
    auditor
        .audit(trail)
        .cases
        .iter()
        .map(|c| {
            let label = match &c.outcome {
                CaseOutcome::Compliant { can_complete } => {
                    format!("compliant complete={can_complete}")
                }
                CaseOutcome::Infringement {
                    infringement,
                    severity,
                } => format!(
                    "infringement@{} severity={:.4}",
                    infringement.entry_index, severity.score
                ),
                other => format!("{other:?}"),
            };
            (c.case, label)
        })
        .collect()
}

/// The same label out of a live monitor shard, wherever it keeps the case
/// (resident session, spilled checkpoint, or retired alarm record).
fn live_label(shard: &LiveAuditor, case: Symbol) -> String {
    let check = shard
        .snapshot(case)
        .expect("case tracked")
        .expect("live replay clean");
    match check.verdict {
        Verdict::Compliant { can_complete } => format!("compliant complete={can_complete}"),
        Verdict::Infringement(inf) => {
            let severity = shard
                .closed_cases()
                .find(|c| c.case == case)
                .expect("alarmed cases retire with a severity assessment")
                .severity
                .score;
            format!("infringement@{} severity={severity:.4}", inf.entry_index)
        }
    }
}

#[test]
fn evicting_live_monitor_matches_batch_verdicts_for_any_arrival_order() {
    let trail = figure4_trail();
    let batch = batch_labels(&hospital_auditor(), &trail);
    let config = LiveConfig {
        max_open_cases: 2,
        ..LiveConfig::default()
    };

    let mut orders: Vec<(String, Vec<LogEntry>)> =
        vec![("logged order".into(), trail.entries().to_vec())];
    for seed in SEEDS {
        orders.push((format!("chaos seed {seed}"), chaos_interleave(&trail, seed)));
    }

    for (context, order) in &orders {
        let mut monitor = LiveAuditor::with_config(hospital_auditor(), config.clone());
        for e in order {
            monitor.observe(e).unwrap();
        }
        assert!(
            monitor.stats().evictions > 0,
            "[{context}] the memory bound must actually bite"
        );
        let live: BTreeMap<Symbol, String> = trail
            .cases()
            .into_iter()
            .map(|c| (c, live_label(&monitor, c)))
            .collect();
        assert_eq!(batch, live, "[{context}] live verdicts drifted from batch");
    }
}

/// Every churn-path configuration must be invisible in the verdicts: the
/// hysteresis shield, the compressed in-memory spill tier and the
/// append-only spill log are throughput machinery, not semantics. Each
/// configuration replays the chaos orders and must reproduce the batch
/// labels byte-for-byte while its distinguishing counter actually fires.
#[test]
fn churn_path_configurations_are_verdict_invisible() {
    let trail = figure4_trail();
    let batch = batch_labels(&hospital_auditor(), &trail);
    let scratch = std::env::temp_dir()
        .join("purposectl-tests")
        .join(format!("streaming-churn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let configs: Vec<(&str, LiveConfig)> = vec![
        (
            "debounce off",
            LiveConfig {
                max_open_cases: 2,
                eviction_debounce: None,
                ..LiveConfig::default()
            },
        ),
        (
            "aggressive debounce",
            LiveConfig {
                max_open_cases: 2,
                eviction_debounce: Some(1024),
                ..LiveConfig::default()
            },
        ),
        (
            "compressed mem tier",
            LiveConfig {
                max_open_cases: 2,
                spill_dir: Some(scratch.join("mem-tier")),
                mem_spill_bytes: 64 * 1024 * 1024,
                ..LiveConfig::default()
            },
        ),
        (
            "spill log",
            LiveConfig {
                max_open_cases: 2,
                spill_dir: Some(scratch.join("log")),
                mem_spill_bytes: 0,
                ..LiveConfig::default()
            },
        ),
    ];

    for (context, config) in &configs {
        // Per-seed counters vary with the interleaving; the machinery must
        // demonstrably engage somewhere across the chaos orders.
        let (mut avoided, mut tier_hits, mut demotions) = (0u64, 0u64, 0u64);
        for seed in SEEDS {
            let order = chaos_interleave(&trail, seed);
            let mut monitor = LiveAuditor::with_config(hospital_auditor(), config.clone());
            for e in &order {
                monitor.observe(e).unwrap();
            }
            let stats = monitor.stats();
            avoided += stats.evictions_avoided;
            tier_hits += stats.spill_tier_hits;
            demotions += stats.spill_disk_demotions;
            assert!(
                stats.evictions > 0,
                "[{context} seed {seed}] the memory bound must bite"
            );
            let live: BTreeMap<Symbol, String> = trail
                .cases()
                .into_iter()
                .map(|c| (c, live_label(&monitor, c)))
                .collect();
            assert_eq!(
                batch, live,
                "[{context} seed {seed}] live verdicts drifted from batch"
            );
        }
        match *context {
            "aggressive debounce" => assert!(
                avoided > 0,
                "the shield must redirect at least one eviction across the seeds"
            ),
            "compressed mem tier" => assert!(
                tier_hits > 0 && demotions == 0,
                "rehydrations must be served from memory"
            ),
            "spill log" => assert!(demotions > 0, "the append-only log must be exercised"),
            _ => {}
        }
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

/// Checkpoint in the middle of a chaos replay — with the spill log
/// populated — restore into a fresh monitor over a fresh directory, finish
/// the stream, and the verdicts must still be the batch verdicts.
#[test]
fn checkpoint_restore_over_a_populated_spill_log_preserves_verdicts() {
    let trail = figure4_trail();
    let batch = batch_labels(&hospital_auditor(), &trail);
    let scratch = std::env::temp_dir()
        .join("purposectl-tests")
        .join(format!("streaming-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    for seed in SEEDS {
        let order = chaos_interleave(&trail, seed);
        let half = order.len() / 2;
        let config = |leg: &str| LiveConfig {
            max_open_cases: 2,
            spill_dir: Some(scratch.join(format!("seed-{seed}-{leg}"))),
            mem_spill_bytes: 0,
            ..LiveConfig::default()
        };

        let mut first = LiveAuditor::with_config(hospital_auditor(), config("a"));
        for e in &order[..half] {
            first.observe(e).unwrap();
        }
        assert!(
            first.spilled_cases() > 0 && first.stats().spill_disk_demotions > 0,
            "[seed {seed}] the checkpoint must be taken over a populated spill log"
        );
        let blob = first.checkpoint(half as u64).unwrap();
        drop(first);

        let (mut resumed, offset) =
            LiveAuditor::restore(hospital_auditor(), config("b"), &blob).unwrap();
        assert_eq!(offset, half as u64);
        for e in &order[half..] {
            resumed.observe(e).unwrap();
        }
        let live: BTreeMap<Symbol, String> = trail
            .cases()
            .into_iter()
            .map(|c| (c, live_label(&resumed, c)))
            .collect();
        assert_eq!(
            batch, live,
            "[seed {seed}] restored monitor drifted from batch"
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn sharded_monitor_matches_batch_verdicts_under_chaos_interleaving() {
    let trail = figure4_trail();
    let batch = batch_labels(&hospital_auditor(), &trail);
    let config = LiveConfig {
        max_open_cases: 2,
        ..LiveConfig::default()
    };
    for seed in SEEDS {
        let order = chaos_interleave(&trail, seed);
        let mut monitor = ShardedMonitor::new(hospital_auditor(), &config, 3);
        monitor.ingest(&order).unwrap();
        let live: BTreeMap<Symbol, String> = trail
            .cases()
            .into_iter()
            .map(|c| (c, live_label(monitor.shard(shard_of(c, 3)), c)))
            .collect();
        assert_eq!(batch, live, "[chaos seed {seed}] sharded verdicts drifted");
    }
}
