//! Streaming equivalence suite: the bounded-memory live monitor must reach
//! exactly the batch auditor's verdicts, for every arrival order a log
//! shipper could produce and under constant eviction pressure.
//!
//! Arrival order is the live monitor's only degree of freedom: per-case
//! entries arrive in sequence (shippers preserve intra-stream order), but
//! cross-case interleaving is arbitrary. The suite replays the Fig. 4
//! trail in its logged order plus several chaos-shuffled interleavings
//! (seeded random merges of the per-case queues), with `max_open_cases =
//! 2` so almost every entry forces an eviction or a rehydration, and
//! requires byte-identical infringement positions and severity scores.

use audit::entry::LogEntry;
use audit::samples::figure4_trail;
use audit::trail::AuditTrail;
use bpmn::models::{clinical_trial, healthcare_treatment};
use cows::symbol::Symbol;
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};
use purpose_control::auditor::{Auditor, CaseOutcome, ProcessRegistry};
use purpose_control::replay::Verdict;
use purpose_control::{shard_of, LiveAuditor, LiveConfig, ShardedMonitor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

const SEEDS: [u64; 4] = [7, 42, 1337, 2026];

fn hospital_auditor() -> Auditor {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    Auditor::new(registry, extended_hospital_policy(), hospital_context())
}

/// A random merge of the per-case entry queues: each step pops the front
/// of a randomly chosen still-nonempty case. Cross-case order is chaos;
/// per-case order is preserved — the one invariant a shipper guarantees.
fn chaos_interleave(trail: &AuditTrail, seed: u64) -> Vec<LogEntry> {
    let mut queues: Vec<VecDeque<LogEntry>> = trail
        .cases()
        .into_iter()
        .map(|c| trail.project_case(c).into_iter().cloned().collect())
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<usize> = (0..queues.len()).collect();
    let mut out = Vec::with_capacity(trail.len());
    while !live.is_empty() {
        let pick = rng.gen_range(0..live.len());
        let q = &mut queues[live[pick]];
        out.push(q.pop_front().expect("live queues are nonempty"));
        if q.is_empty() {
            live.swap_remove(pick);
        }
    }
    out
}

/// Comparable per-case verdict: compliance (with completability) or the
/// per-case index of the infringing entry plus its severity score.
fn batch_labels(auditor: &Auditor, trail: &AuditTrail) -> BTreeMap<Symbol, String> {
    auditor
        .audit(trail)
        .cases
        .iter()
        .map(|c| {
            let label = match &c.outcome {
                CaseOutcome::Compliant { can_complete } => {
                    format!("compliant complete={can_complete}")
                }
                CaseOutcome::Infringement {
                    infringement,
                    severity,
                } => format!(
                    "infringement@{} severity={:.4}",
                    infringement.entry_index, severity.score
                ),
                other => format!("{other:?}"),
            };
            (c.case, label)
        })
        .collect()
}

/// The same label out of a live monitor shard, wherever it keeps the case
/// (resident session, spilled checkpoint, or retired alarm record).
fn live_label(shard: &LiveAuditor, case: Symbol) -> String {
    let check = shard
        .snapshot(case)
        .expect("case tracked")
        .expect("live replay clean");
    match check.verdict {
        Verdict::Compliant { can_complete } => format!("compliant complete={can_complete}"),
        Verdict::Infringement(inf) => {
            let severity = shard
                .closed_cases()
                .find(|c| c.case == case)
                .expect("alarmed cases retire with a severity assessment")
                .severity
                .score;
            format!("infringement@{} severity={severity:.4}", inf.entry_index)
        }
    }
}

#[test]
fn evicting_live_monitor_matches_batch_verdicts_for_any_arrival_order() {
    let trail = figure4_trail();
    let batch = batch_labels(&hospital_auditor(), &trail);
    let config = LiveConfig {
        max_open_cases: 2,
        ..LiveConfig::default()
    };

    let mut orders: Vec<(String, Vec<LogEntry>)> =
        vec![("logged order".into(), trail.entries().to_vec())];
    for seed in SEEDS {
        orders.push((format!("chaos seed {seed}"), chaos_interleave(&trail, seed)));
    }

    for (context, order) in &orders {
        let mut monitor = LiveAuditor::with_config(hospital_auditor(), config.clone());
        for e in order {
            monitor.observe(e).unwrap();
        }
        assert!(
            monitor.stats().evictions > 0,
            "[{context}] the memory bound must actually bite"
        );
        let live: BTreeMap<Symbol, String> = trail
            .cases()
            .into_iter()
            .map(|c| (c, live_label(&monitor, c)))
            .collect();
        assert_eq!(batch, live, "[{context}] live verdicts drifted from batch");
    }
}

#[test]
fn sharded_monitor_matches_batch_verdicts_under_chaos_interleaving() {
    let trail = figure4_trail();
    let batch = batch_labels(&hospital_auditor(), &trail);
    let config = LiveConfig {
        max_open_cases: 2,
        ..LiveConfig::default()
    };
    for seed in SEEDS {
        let order = chaos_interleave(&trail, seed);
        let mut monitor = ShardedMonitor::new(hospital_auditor(), &config, 3);
        monitor.ingest(&order).unwrap();
        let live: BTreeMap<Symbol, String> = trail
            .cases()
            .into_iter()
            .map(|c| (c, live_label(monitor.shard(shard_of(c, 3)), c)))
            .collect();
        assert_eq!(batch, live, "[chaos seed {seed}] sharded verdicts drifted");
    }
}
