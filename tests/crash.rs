//! Kill-9 crash-injection harness for the durable layer.
//!
//! `purposectl serve` and `purposectl watch` are run as black-box child
//! processes and killed with SIGKILL at seed-randomized points
//! (`workload::crashgen`): mid-ingest, mid-drain, right after an admin
//! checkpoint, before any checkpoint exists at all. The contract under
//! test is the durability playbook's bottom line:
//!
//! * restart never panics and never refuses to start — torn state on disk
//!   (half-written checkpoints, spill logs with torn tails) is either
//!   recovered or reported as a **typed** degraded restore;
//! * after resubmitting from the reported resume offset, the final alarm
//!   set and per-case verdicts are **byte-identical** to an uninterrupted
//!   batch audit — a crash may cost progress, never a wrong verdict.
//!
//! `CRASH_SEED=<n>` pins one seed (the CI matrix fans out over
//! {7, 42, 1337}); unset, every default seed runs in-process.

use audit::entry::LogEntry;
use audit::trail::AuditTrail;
use bpmn::models::{clinical_trial, healthcare_treatment};
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};
use purpose_control::auditor::{Auditor, CaseOutcome, ProcessRegistry};
use purpose_control::parallel::audit_parallel;
use serve::client::{request, Response};
use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use workload::crashgen::{batch_splits, seed_matrix, CrashSchedule};
use workload::hospital::{generate_day, HospitalConfig};
use workload::stream::interleave;

const TENANTS: [&str; 3] = ["north", "south", "east"];
const BATCHES_PER_TENANT: usize = 5;

fn e2e_entries() -> usize {
    std::env::var("CRASH_E2E_ENTRIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8_000)
}

// ---------------------------------------------------------------------------
// Child-process harness (kill -9 variant of the tests/serve.rs harness)
// ---------------------------------------------------------------------------

fn purposectl_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.push("purposectl");
    assert!(
        path.exists(),
        "purposectl binary not found at {} — run the full `cargo test` (workspace build) first",
        path.display()
    );
    path
}

struct ServerProc {
    child: Child,
    addr: String,
    /// Everything the server printed before `serving on` — restore
    /// diagnostics land here, and every line must be typed.
    startup_lines: Vec<String>,
}

impl ServerProc {
    fn spawn(tenants: &[&str], extra: &[&str]) -> ServerProc {
        let mut cmd = Command::new(purposectl_bin());
        cmd.args([
            "serve",
            "--tenants",
            &tenants.join(","),
            "--process",
            "treatment=@healthcare_treatment",
            "--process",
            "clinical_trial=@clinical_trial",
            "--map",
            "HT-=treatment",
            "--map",
            "CT-=clinical_trial",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
        let mut child = cmd.spawn().expect("spawn purposectl serve");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut startup_lines = Vec::new();
        let addr = loop {
            assert!(
                Instant::now() < deadline,
                "server did not report its address; startup so far: {startup_lines:?}"
            );
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(addr) = line.strip_prefix("serving on ") {
                        break addr.trim().to_string();
                    }
                    startup_lines.push(line);
                }
                other => {
                    panic!("server exited before binding: {other:?}; startup: {startup_lines:?}")
                }
            }
        };
        std::thread::spawn(move || for _ in lines.by_ref() {});
        ServerProc {
            child,
            addr,
            startup_lines,
        }
    }

    fn get(&self, path: &str) -> Response {
        request(&self.addr, "GET", path, "").expect("GET")
    }

    fn post(&self, path: &str, body: &str) -> Response {
        request(&self.addr, "POST", path, body).expect("POST")
    }

    /// The crash: SIGKILL, no drain, no checkpoint, no goodbye.
    fn kill9(mut self) {
        self.child.kill().expect("SIGKILL");
        let _ = self.child.wait();
    }

    /// Graceful SIGTERM shutdown; asserts a clean exit (a tenant worker
    /// that panicked after restart fails the drain and exits non-zero).
    fn terminate(mut self) {
        let pid = self.child.id().to_string();
        let status = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("send SIGTERM");
        assert!(status.success(), "kill -TERM failed");
        let status = self.child.wait().expect("wait for child");
        assert!(status.success(), "server exited uncleanly: {status:?}");
    }

    fn quiesce(&self, tenants: &[&str]) {
        let deadline = Instant::now() + Duration::from_secs(120);
        for tenant in tenants {
            loop {
                assert!(Instant::now() < deadline, "tenant {tenant} never drained");
                let verdicts = self.get(&format!("/v1/{tenant}/verdicts"));
                assert_eq!(verdicts.status, 200);
                let doc = obs::parse_json(&verdicts.body).expect("verdicts JSON");
                if number(&doc, "queued") == 0.0 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn number(doc: &obs::JsonValue, key: &str) -> f64 {
    match doc.get(key) {
        Some(obs::JsonValue::Number(n)) => *n,
        other => panic!("field `{key}` missing or non-numeric: {other:?}"),
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("purposectl-tests")
        .join(format!("crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Every line printed before `serving on` must be a typed diagnostic, not
/// a stray panic or corruption spew.
fn assert_startup_typed(server: &ServerProc) {
    for line in &server.startup_lines {
        assert!(
            line.starts_with("serve: ") || line.starts_with("snapshot"),
            "untyped startup line after crash restart: {line:?}"
        );
        assert!(
            !line.contains("panicked"),
            "panic leaked into startup: {line:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Workload plumbing (shared shape with tests/serve.rs)
// ---------------------------------------------------------------------------

fn hospital_auditor() -> Auditor {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    Auditor::new(registry, extended_hospital_policy(), hospital_context())
}

fn batch_labels(trail: &AuditTrail) -> BTreeMap<String, String> {
    audit_parallel(&hospital_auditor(), trail, 4)
        .cases
        .iter()
        .map(|c| {
            let label = match &c.outcome {
                CaseOutcome::Compliant { can_complete } => {
                    format!("compliant complete={can_complete}")
                }
                CaseOutcome::Infringement {
                    infringement,
                    severity,
                } => format!(
                    "infringement@{} severity={:.4}",
                    infringement.entry_index, severity.score
                ),
                other => format!("{other:?}"),
            };
            (c.case.to_string(), label)
        })
        .collect()
}

fn p12_stream(entries: usize) -> (AuditTrail, Vec<LogEntry>) {
    let day = generate_day(
        &HospitalConfig {
            target_entries: entries,
            ..HospitalConfig::default()
        },
        42,
    );
    let stream = interleave(&day.trail);
    (day.trail, stream)
}

fn split_by_tenant(stream: &[LogEntry]) -> BTreeMap<&'static str, Vec<String>> {
    let mut per: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
    for t in TENANTS {
        per.insert(t, Vec::new());
    }
    for entry in stream {
        let key = audit::case_key(entry.case.as_str());
        let tenant = TENANTS[audit::partition_of(key, TENANTS.len())];
        per.get_mut(tenant).unwrap().push(entry.to_string());
    }
    per
}

fn submit_lines(server: &ServerProc, tenant: &str, lines: &[String]) -> u64 {
    if lines.is_empty() {
        return 0;
    }
    let body = format!("{}\n", lines.join("\n"));
    let resp = server.post(&format!("/v1/{tenant}/entries"), &body);
    assert_eq!(resp.status, 202, "submit failed: {}", resp.body);
    let doc = obs::parse_json(&resp.body).expect("accept JSON");
    number(&doc, "accepted") as u64
}

fn served_labels(server: &ServerProc, trail: &AuditTrail) -> BTreeMap<String, String> {
    let mut labels = BTreeMap::new();
    for case in trail.cases() {
        let key = audit::case_key(case.as_str());
        let tenant = TENANTS[audit::partition_of(key, TENANTS.len())];
        let resp = server.get(&format!("/v1/{tenant}/cases/{case}"));
        assert_eq!(resp.status, 200, "case {case}: {}", resp.body);
        let doc = obs::parse_json(&resp.body).expect("case JSON");
        let verdict = doc
            .get("verdict")
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("case {case}: no verdict in {}", resp.body));
        labels.insert(case.to_string(), verdict.to_string());
    }
    labels
}

fn alarmed_cases(server: &ServerProc, tenants: &[&str]) -> Vec<String> {
    let mut alarmed = Vec::new();
    for tenant in tenants {
        let resp = server.get(&format!("/v1/{tenant}/verdicts"));
        assert_eq!(resp.status, 200);
        let doc = obs::parse_json(&resp.body).expect("verdicts JSON");
        if let Some(list) = doc.get("alarmed").and_then(|v| v.as_array()) {
            alarmed.extend(
                list.iter()
                    .filter_map(|v| v.as_str())
                    .map(|s| s.to_string()),
            );
        }
    }
    alarmed.sort();
    alarmed
}

// ---------------------------------------------------------------------------
// (a) serve: SIGKILL at seed-randomized points → restart → resume identity
// ---------------------------------------------------------------------------

#[test]
fn sigkill_serve_restart_resumes_to_identical_verdicts() {
    let (trail, stream) = p12_stream(e2e_entries());
    let batch = batch_labels(&trail);
    let mut expected_alarms: Vec<String> = batch
        .iter()
        .filter(|(_, label)| label.starts_with("infringement@"))
        .map(|(case, _)| case.clone())
        .collect();
    expected_alarms.sort();
    assert!(
        !expected_alarms.is_empty(),
        "workload must contain infringements for this test to bite"
    );
    let split = split_by_tenant(&stream);

    for seed in seed_matrix() {
        let schedule = CrashSchedule::derive(seed, BATCHES_PER_TENANT);
        let ckpt = scratch_dir(&format!("serve-{seed}"));
        let ckpt_flag = ckpt.to_str().unwrap().to_string();
        let flight_dir = ckpt.join("flight");
        let flight_flag = flight_dir.to_str().unwrap().to_string();
        let extra = [
            "--checkpoint-dir",
            &ckpt_flag,
            "--durability",
            "always",
            "--shards",
            "2",
            "--flight-dir",
            &flight_flag,
        ];

        // Phase 1: feed each tenant its first `kill_after_batch` batches,
        // optionally checkpoint, then SIGKILL mid-flight.
        let server = ServerProc::spawn(&TENANTS, &extra);
        let mut submitted: BTreeMap<&str, usize> = BTreeMap::new();
        for (tenant, lines) in &split {
            let cuts = batch_splits(seed, lines.len(), BATCHES_PER_TENANT);
            let upto = cuts[schedule.kill_after_batch - 1];
            let mut sent = 0usize;
            let mut start = 0usize;
            for &end in cuts.iter().take(schedule.kill_after_batch) {
                sent += submit_lines(&server, tenant, &lines[start..end]) as usize;
                start = end;
            }
            assert_eq!(sent, upto, "tenant {tenant}: accepted != submitted");
            submitted.insert(tenant, upto);
        }
        if schedule.checkpoint_before_kill {
            let resp = server.post("/admin/checkpoint", "");
            assert_eq!(resp.status, 200, "admin checkpoint: {}", resp.body);
        }
        // The flight recorder persists its ring every ~500ms; wait for the
        // first periodic dump so the SIGKILL below provably leaves a
        // postmortem behind (the atomic rename means it is never torn).
        let flight_file = flight_dir.join("flight.jsonl");
        let flight_deadline = Instant::now() + Duration::from_secs(10);
        while !flight_file.exists() {
            assert!(
                Instant::now() < flight_deadline,
                "seed {seed}: periodic flight dump never appeared"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis(schedule.kill_delay_ms));
        server.kill9();

        // The postmortem the crash left behind: schema-valid lines whose
        // committed offsets never exceed what was actually submitted.
        let flight_schema_text = std::fs::read_to_string(
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("schemas/flight.schema.json"),
        )
        .expect("flight schema");
        let flight_schema = obs::parse_json(&flight_schema_text).expect("schema parses");
        let text = std::fs::read_to_string(&flight_file).expect("flight dump readable");
        for line in text.lines() {
            let doc = obs::parse_json(line)
                .unwrap_or_else(|e| panic!("seed {seed}: torn flight line {line:?}: {e:?}"));
            let errors = obs::validate(&doc, &flight_schema);
            assert!(
                errors.is_empty(),
                "seed {seed}: flight schema violations: {errors:?}\n{line}"
            );
            if doc.get("kind").and_then(|v| v.as_str()) == Some("OffsetCommit") {
                let tenant = doc.get("tenant").and_then(|v| v.as_str()).unwrap();
                let offset = number(&doc, "offset") as usize;
                assert!(
                    offset <= submitted[tenant],
                    "seed {seed}, tenant {tenant}: flight offset {offset} beyond \
                     submitted {}",
                    submitted[tenant]
                );
            }
        }

        // Phase 2: restart against whatever the crash left on disk. The
        // startup must be clean or *typed*-degraded — never a panic, never
        // a refusal to serve.
        let server = ServerProc::spawn(&TENANTS, &extra);
        assert_startup_typed(&server);
        for (tenant, lines) in &split {
            let resp = server.get(&format!("/v1/{tenant}/verdicts"));
            let doc = obs::parse_json(&resp.body).expect("verdicts JSON");
            let offset = number(&doc, "audited") as usize;
            assert!(
                offset <= submitted[tenant.to_owned()],
                "seed {seed}, tenant {tenant}: resume offset {offset} beyond \
                 what was ever submitted ({}) — corrupted restore",
                submitted[tenant.to_owned()]
            );
            // Client resume contract: resubmit everything from the
            // reported offset; entries the crash swallowed are replayed.
            submit_lines(&server, tenant, &lines[offset..]);
        }
        server.quiesce(&TENANTS);

        let served_alarms = alarmed_cases(&server, &TENANTS);
        assert_eq!(
            served_alarms, expected_alarms,
            "seed {seed} ({schedule:?}): alarm set diverged after kill -9"
        );
        let served = served_labels(&server, &trail);
        for (case, batch_label) in &batch {
            assert_eq!(
                served.get(case),
                Some(batch_label),
                "seed {seed} ({schedule:?}): case {case} verdict diverged after kill -9"
            );
        }
        server.terminate();
        let _ = std::fs::remove_dir_all(&ckpt);
    }
}

// ---------------------------------------------------------------------------
// (b) serve: a torn checkpoint on disk is a typed degraded restore
// ---------------------------------------------------------------------------

#[test]
fn torn_checkpoint_restores_typed_degraded_never_wrong() {
    let (trail, stream) = p12_stream(4_000);
    let batch = batch_labels(&trail);
    let split = split_by_tenant(&stream);

    let ckpt = scratch_dir("torn-ckpt");
    let ckpt_flag = ckpt.to_str().unwrap().to_string();
    // A half-written checkpoint the rename discipline would never leave
    // behind — exactly what a pre-durability crash could produce.
    std::fs::write(ckpt.join("north.ckpt"), b"PCLS\x01torn-mid-write").unwrap();
    std::fs::write(ckpt.join("south.ckpt"), b"").unwrap();

    let server = ServerProc::spawn(&TENANTS, &["--checkpoint-dir", &ckpt_flag]);
    assert_startup_typed(&server);
    let degraded: Vec<&String> = server
        .startup_lines
        .iter()
        .filter(|l| l.contains("starting cold"))
        .collect();
    assert_eq!(
        degraded.len(),
        2,
        "both torn checkpoints must be reported as typed cold starts: {:?}",
        server.startup_lines
    );

    for (tenant, lines) in &split {
        submit_lines(&server, tenant, lines);
    }
    server.quiesce(&TENANTS);
    let served = served_labels(&server, &trail);
    for (case, batch_label) in &batch {
        assert_eq!(
            served.get(case),
            Some(batch_label),
            "case {case}: torn checkpoint corrupted a verdict"
        );
    }
    server.terminate();
    let _ = std::fs::remove_dir_all(&ckpt);
}

// ---------------------------------------------------------------------------
// (c) watch: SIGKILL mid-run leaves nothing a cold restart trips over
// ---------------------------------------------------------------------------

struct WatchRun {
    alarms: Vec<String>,
    stdout: String,
    code: i32,
}

fn run_watch(trail_file: &PathBuf, extra: &[&str]) -> WatchRun {
    let output = Command::new(purposectl_bin())
        .arg("watch")
        .arg(trail_file)
        .args([
            "--process",
            "treatment=@healthcare_treatment",
            "--process",
            "clinical_trial=@clinical_trial",
            "--map",
            "HT-=treatment",
            "--map",
            "CT-=clinical_trial",
        ])
        .args(extra)
        .output()
        .expect("run purposectl watch");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let mut alarms: Vec<String> = stdout
        .lines()
        .filter(|l| l.starts_with("ALARM "))
        .map(|l| l.to_string())
        .collect();
    alarms.sort();
    WatchRun {
        alarms,
        stdout,
        code: output.status.code().unwrap_or(-1),
    }
}

#[test]
fn sigkill_watch_cold_restart_replays_identical_alarms() {
    let (_, stream) = p12_stream(6_000);
    let dir = scratch_dir("watch");
    let trail_file = dir.join("day.log");
    let text: String = stream.iter().map(|e| format!("{e}\n")).collect();
    std::fs::write(&trail_file, text).unwrap();

    // Tiny caps + spill-to-disk so the run under kill actually writes
    // spill-log state the crash can tear.
    let spill = dir.join("spill");
    let spill_flag = spill.to_str().unwrap().to_string();
    let ckpt = dir.join("watch.pclm");
    let ckpt_flag = ckpt.to_str().unwrap().to_string();
    let caps = [
        "--max-open-cases",
        "64",
        "--spill-mem-kib",
        "0",
        "--spill-dir",
        &spill_flag,
        "--durability",
        "batched:4",
    ];

    // Reference: one uninterrupted run to completion.
    let reference = run_watch(&trail_file, &caps);
    assert!(
        !reference.alarms.is_empty(),
        "workload must alarm for this test to bite:\n{}",
        reference.stdout
    );

    for seed in seed_matrix() {
        // Crash run: --follow keeps it alive until we SIGKILL it at a
        // seed-derived moment mid-replay.
        let mut extra: Vec<&str> = caps.to_vec();
        extra.extend(["--checkpoint", &ckpt_flag, "--follow", "--poll-ms", "25"]);
        let mut child = Command::new(purposectl_bin())
            .arg("watch")
            .arg(&trail_file)
            .args([
                "--process",
                "treatment=@healthcare_treatment",
                "--process",
                "clinical_trial=@clinical_trial",
                "--map",
                "HT-=treatment",
                "--map",
                "CT-=clinical_trial",
            ])
            .args(&extra)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn purposectl watch");
        let schedule = CrashSchedule::derive(seed, BATCHES_PER_TENANT);
        std::thread::sleep(Duration::from_millis(20 + schedule.kill_delay_ms * 4));
        child.kill().expect("SIGKILL watch");
        let _ = child.wait();

        // kill -9 means the exit checkpoint never ran: whatever spill logs
        // or tmp files the crash left behind must not poison a restart.
        // The restart (same spill dir, same checkpoint path) replays the
        // file and must land on the reference alarms exactly.
        let mut restart_flags: Vec<&str> = caps.to_vec();
        restart_flags.extend(["--checkpoint", &ckpt_flag]);
        let restart = run_watch(&trail_file, &restart_flags);
        assert_eq!(
            restart.alarms, reference.alarms,
            "seed {seed}: alarms diverged after kill -9 cold restart\n{}",
            restart.stdout
        );
        assert_eq!(
            restart.code, reference.code,
            "seed {seed}: exit code drifted"
        );
        // The restart wrote its checkpoint durably; corrupt it and run
        // again: typed degraded restore, identical alarms.
        let bytes = std::fs::read(&ckpt).expect("checkpoint written");
        std::fs::write(&ckpt, &bytes[..bytes.len() / 2]).unwrap();
        let degraded = run_watch(&trail_file, &restart_flags);
        assert!(
            degraded.stdout.contains("starting cold"),
            "seed {seed}: torn checkpoint not reported as typed cold start:\n{}",
            degraded.stdout
        );
        assert_eq!(
            degraded.alarms, reference.alarms,
            "seed {seed}: torn checkpoint corrupted the alarm set"
        );
        let _ = std::fs::remove_file(&ckpt);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
