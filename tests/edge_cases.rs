//! Edge-case integration tests: inclusive gateways inside loops, multiple
//! OR splits sharing a join, session resumption across audit rounds on the
//! paper's model, and reordering attacks.

use audit::entry::LogEntry;
use audit::samples::figure4_trail;
use audit::time::Timestamp;
use bpmn::encode::encode;
use bpmn::model::ProcessBuilder;
use bpmn::models::healthcare_treatment;
use cows::sym;
use policy::hierarchy::RoleHierarchy;
use policy::samples::hospital_context;
use policy::statement::Action;
use purpose_control::replay::{check_case, CheckOptions, Verdict};
use purpose_control::session::{FeedOutcome, ReplaySession};

fn ok(role: &str, task: &str, minute: u64) -> LogEntry {
    LogEntry::success("u", role, Action::Read, None, task, "c", Timestamp(minute))
}

fn check(model: &bpmn::ProcessModel, entries: &[LogEntry]) -> Verdict {
    let encoded = encode(model);
    let refs: Vec<&LogEntry> = entries.iter().collect();
    check_case(
        &encoded,
        &RoleHierarchy::new(),
        &refs,
        &CheckOptions::default(),
    )
    .unwrap()
    .verdict
}

/// An OR diamond inside a loop: the join must resynchronize correctly on
/// every iteration (the Fig. 1 S4 re-use pattern, single-pool variant).
#[test]
fn or_gateway_inside_a_loop() {
    let mut b = ProcessBuilder::new("or_loop");
    let p = b.pool("P");
    let s = b.start(p, "S");
    let head = b.task(p, "Head");
    let g = b.or_split(p, "G");
    let a = b.task(p, "A");
    let t = b.task(p, "B");
    let j = b.or_join(p, "J");
    b.pair_or(g, j);
    let tail = b.task(p, "Tail");
    let x = b.xor(p, "X");
    let e = b.end(p, "E");
    b.flow(s, head);
    b.flow(head, g);
    b.flow(g, a);
    b.flow(g, t);
    b.flow(a, j);
    b.flow(t, j);
    b.flow(j, tail);
    b.flow(tail, x);
    b.flow(x, head); // loop
    b.flow(x, e);
    let model = b.build().unwrap();

    // Iteration 1: both branches; iteration 2: only A; then exit.
    let entries = vec![
        ok("P", "Head", 0),
        ok("P", "A", 10),
        ok("P", "B", 20),
        ok("P", "Tail", 30),
        ok("P", "Head", 40),
        ok("P", "A", 50),
        ok("P", "Tail", 60),
    ];
    assert_eq!(
        check(&model, &entries),
        Verdict::Compliant { can_complete: true }
    );

    // Claiming both branches but only delivering one token must not let
    // Tail through: B logged, then Tail without B's token being possible…
    // actually B was never started — the single-branch choice explains it,
    // so a *missing* B is fine. What must fail is Tail before any branch.
    let bad = vec![ok("P", "Head", 0), ok("P", "Tail", 10)];
    assert!(!check(&model, &bad).is_compliant());
}

/// Two OR splits paired with the same join: counts must not cross-talk.
#[test]
fn two_or_splits_sharing_one_join() {
    let mut b = ProcessBuilder::new("two_splits");
    let p = b.pool("P");
    let s = b.start(p, "S");
    let pick = b.xor(p, "Pick");
    let g1 = b.or_split(p, "G1");
    let g2 = b.or_split(p, "G2");
    let a1 = b.task(p, "A1");
    let a2 = b.task(p, "A2");
    let b1 = b.task(p, "B1");
    let b2 = b.task(p, "B2");
    let j = b.or_join(p, "J");
    b.pair_or(g1, j);
    b.pair_or(g2, j);
    let tail = b.task(p, "Tail");
    let e = b.end(p, "E");
    b.flow(s, pick);
    b.flow(pick, g1);
    b.flow(pick, g2);
    b.flow(g1, a1);
    b.flow(g1, a2);
    b.flow(g2, b1);
    b.flow(g2, b2);
    for t in [a1, a2, b1, b2] {
        b.flow(t, j);
    }
    b.flow(j, tail);
    b.flow(tail, e);
    let model = b.build().unwrap();

    // G1 chosen with both branches.
    let entries = vec![ok("P", "A1", 0), ok("P", "A2", 10), ok("P", "Tail", 20)];
    assert_eq!(
        check(&model, &entries),
        Verdict::Compliant { can_complete: true }
    );
    // G2 chosen with one branch.
    let entries = vec![ok("P", "B2", 0), ok("P", "Tail", 10)];
    assert_eq!(
        check(&model, &entries),
        Verdict::Compliant { can_complete: true }
    );
    // Mixing branches of different splits is not a valid execution.
    let entries = vec![ok("P", "A1", 0), ok("P", "B1", 10), ok("P", "Tail", 20)];
    assert!(!check(&model, &entries).is_compliant());
}

/// §4 resumption on the paper's own model: audit HT-1 mid-flight on day
/// one (compliant, incomplete), resume with the remaining entries later.
#[test]
fn session_resumes_ht1_across_audit_rounds() {
    let encoded = encode(&healthcare_treatment());
    let ctx = hospital_context();
    let trail = figure4_trail();
    let entries = trail.project_case(sym("HT-1"));

    let mut session = ReplaySession::new(&encoded, ctx.roles(), CheckOptions::default()).unwrap();
    // Day one: the first 8 entries (through the radiology work).
    for e in &entries[..8] {
        assert!(matches!(
            session.feed(e).unwrap(),
            FeedOutcome::Accepted { .. }
        ));
    }
    let midway = session.finish().unwrap();
    assert_eq!(
        midway.verdict,
        Verdict::Compliant {
            can_complete: false
        },
        "mid-flight case is compliant but unfinished"
    );

    // Day two: the rest.
    for e in &entries[8..] {
        assert!(matches!(
            session.feed(e).unwrap(),
            FeedOutcome::Accepted { .. }
        ));
    }
    let done = session.finish().unwrap();
    assert_eq!(done.verdict, Verdict::Compliant { can_complete: true });
}

/// Reordering two different-task entries across a sequential dependency is
/// detected (the shuffle injector).
#[test]
fn shuffled_sequential_entries_are_detected() {
    let mut b = ProcessBuilder::new("seq");
    let p = b.pool("P");
    let s = b.start(p, "S");
    let a = b.task(p, "A");
    let t = b.task(p, "B");
    let c2 = b.task(p, "C");
    let e = b.end(p, "E");
    b.chain(&[s, a, t, c2, e]);
    let model = b.build().unwrap();

    let mut entries = vec![ok("P", "A", 0), ok("P", "B", 10), ok("P", "C", 20)];
    // Swap B and C's timestamps by hand (deterministic shuffle).
    let (tb, tc) = (entries[1].time, entries[2].time);
    entries[1].time = tc;
    entries[2].time = tb;
    let sorted = audit::AuditTrail::from_entries(entries);
    let refs: Vec<&LogEntry> = sorted.entries().iter().collect();
    let out = check_case(
        &encode(&model),
        &RoleHierarchy::new(),
        &refs,
        &CheckOptions::default(),
    )
    .unwrap();
    assert!(!out.verdict.is_compliant());
}

/// The temporal constraint composes with the paper's model: HT-1 spans
/// more than a month, so a 7-day window flags it even though the steps are
/// process-valid.
#[test]
fn temporal_constraint_on_ht1() {
    let encoded = encode(&healthcare_treatment());
    let ctx = hospital_context();
    let trail = figure4_trail();
    let entries = trail.project_case(sym("HT-1"));
    let opts = CheckOptions {
        max_case_minutes: Some(7 * 24 * 60),
        ..CheckOptions::default()
    };
    let out = check_case(&encoded, ctx.roles(), &entries, &opts).unwrap();
    match out.verdict {
        Verdict::Infringement(inf) => {
            assert!(matches!(
                inf.kind,
                purpose_control::InfringementKind::TemporalViolation { .. }
            ));
        }
        v => panic!("expected a temporal violation, got {v:?}"),
    }
}
