//! End-to-end pipeline tests spanning every crate: workload generation →
//! integrity chain → preventive policy pass → parallel Algorithm-1 audit →
//! severity triage, scored against ground truth.

use audit::chain::ChainedTrail;
use bpmn::models::{clinical_trial, healthcare_treatment};
use cows::sym;
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};
use purpose_control::auditor::{Auditor, CaseOutcome, ProcessRegistry};
use purpose_control::parallel::audit_parallel;
use workload::hospital::{generate_day, HospitalConfig};
use workload::Injection;

fn hospital_auditor() -> Auditor {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    Auditor::new(registry, extended_hospital_policy(), hospital_context())
}

fn small_day() -> workload::HospitalDay {
    generate_day(
        &HospitalConfig {
            target_entries: 600,
            trial_fraction: 0.1,
            attack_fraction: 0.25,
            error_prob: 0.15,
        },
        2024,
    )
}

#[test]
fn hospital_day_end_to_end() {
    let day = small_day();
    let auditor = hospital_auditor();
    let report = audit_parallel(&auditor, &day.trail, 4);

    assert_eq!(report.cases.len(), day.truth.len());

    let mut missed: Vec<(String, Injection)> = Vec::new();
    let mut false_alarms: Vec<String> = Vec::new();
    for case in &report.cases {
        let truth = &day.truth[&case.case];
        let flagged = matches!(case.outcome, CaseOutcome::Infringement { .. });
        match (&truth.injected, flagged) {
            (Some(_), true) | (None, false) => {}
            (Some(inj), false) => missed.push((case.case.to_string(), inj.clone())),
            (None, true) => false_alarms.push(case.case.to_string()),
        }
    }

    // Compliant cases never raise alarms (Theorem 2 completeness: the
    // simulated trail IS a valid execution).
    assert!(
        false_alarms.is_empty(),
        "false alarms on compliant cases: {false_alarms:?}"
    );

    // The only injections Algorithm 1 may legitimately miss are prefix
    // survivals: a skipped *suffix* task or a shuffle that lands on another
    // valid interleaving. Everything it missed must be explainable.
    for (case, inj) in &missed {
        assert!(
            matches!(
                inj,
                Injection::SkippedTask { .. } | Injection::Shuffled { .. }
            ),
            "case {case}: unexplained miss of {inj:?}"
        );
    }
    // And the bulk of attacks must be caught.
    let attacked = day.attacked_cases();
    assert!(
        missed.len() * 4 <= attacked,
        "missed {} of {attacked} attacks",
        missed.len()
    );
}

#[test]
fn parallel_and_sequential_reports_agree_at_scale() {
    let day = small_day();
    let auditor = hospital_auditor();
    let seq = auditor.audit(&day.trail);
    let par = audit_parallel(&auditor, &day.trail, 8);
    assert_eq!(seq.cases.len(), par.cases.len());
    for (a, b) in seq.cases.iter().zip(&par.cases) {
        assert_eq!(a.case, b.case);
        assert_eq!(
            a.outcome.is_infringement(),
            b.outcome.is_infringement(),
            "case {} disagrees between sequential and parallel",
            a.case
        );
    }
}

#[test]
fn integrity_chain_protects_the_evidence() {
    // The audit evidence pipeline: commit the day's trail, verify, tamper,
    // detect.
    let day = generate_day(
        &HospitalConfig {
            target_entries: 120,
            attack_fraction: 0.0,
            ..HospitalConfig::default()
        },
        5,
    );
    let committed = ChainedTrail::commit(day.trail.clone());
    assert!(committed.verify().is_ok());

    // An attacker who can rewrite storage still cannot hide: delete the
    // incriminating tail.
    let mut tampered = committed.clone();
    let shortened =
        audit::AuditTrail::from_entries(day.trail.entries()[..day.trail.len() - 3].to_vec());
    *tampered.tamper() = shortened;
    assert!(tampered.verify().is_err());
}

#[test]
fn codec_round_trips_generated_days() {
    let day = generate_day(
        &HospitalConfig {
            target_entries: 200,
            ..HospitalConfig::default()
        },
        77,
    );
    let text = audit::codec::format_trail(&day.trail);
    let parsed = audit::codec::parse_trail(&text).unwrap();
    assert_eq!(parsed.len(), day.trail.len());
    // Case projections survive the round trip.
    for case in day.trail.cases() {
        assert_eq!(
            parsed.project_case(case).len(),
            day.trail.project_case(case).len()
        );
    }
}

#[test]
fn preventive_and_purpose_layers_are_complementary() {
    // The paper's central point (§2): prevention alone cannot catch
    // re-purposing. Build a trail whose every access is authorized but
    // whose case is not a valid process execution.
    let auditor = hospital_auditor();
    let trail = audit::codec::parse_trail(
        "Bob Cardiologist read [Jane]EPR/Clinical T06 HT-99 201007060900 success\n",
    )
    .unwrap();
    // Layer 1 (Def. 3): permitted — Bob is a physician reading clinical
    // data under a treatment task.
    assert!(auditor.preventive_check(&trail).is_empty());
    // Layer 2 (Algorithm 1): infringement — HT-99 is not a valid execution
    // of the treatment process.
    let r = auditor.check_one_case(&trail, sym("HT-99"));
    assert!(r.outcome.is_infringement());
}

#[test]
fn consent_violations_caught_by_the_preventive_layer_only() {
    // Generate a day with trial cases; wire the day's consents into the
    // auditor context. Withheld-consent cases follow the trial process
    // perfectly — Algorithm 1 must NOT flag them — but their T92 EPR reads
    // fail Def. 3 (the Fig. 3 `[X]EPR` statement requires consent).
    let day = generate_day(
        &HospitalConfig {
            target_entries: 1_500,
            trial_fraction: 0.5,
            attack_fraction: 0.3,
            error_prob: 0.0,
        },
        99,
    );
    // Only cases that actually read a patient object can violate the
    // consent statement (the T92 profile mixes EPR reads with bookkeeping
    // writes, so some trial cases never touch an EPR).
    let reads_subject = |case: cows::Symbol| {
        day.trail
            .project_case(case)
            .iter()
            .any(|e| e.object.as_ref().is_some_and(|o| o.subject.is_some()))
    };
    let withheld: Vec<_> = day
        .truth
        .iter()
        .filter(|(c, t)| t.consent_withheld && t.injected.is_none() && reads_subject(**c))
        .map(|(c, _)| *c)
        .collect();
    assert!(!withheld.is_empty(), "need withheld-consent trial cases");

    let mut auditor = hospital_auditor();
    for (patient, purpose) in &day.consents {
        auditor.context.grant_consent(*patient, *purpose);
    }
    let report = auditor.audit(&day.trail);

    // Layer 2 (Algorithm 1) sees nothing wrong with these cases…
    for case in &withheld {
        let r = report.cases.iter().find(|c| c.case == *case).unwrap();
        assert!(
            r.outcome.is_compliant(),
            "case {case} follows the process; got {:?}",
            r.outcome
        );
    }
    // …but layer 1 (Def. 3) flags their non-consented EPR reads.
    for case in &withheld {
        let flagged = report.preventive_violations.iter().any(|v| {
            v.entry.case == *case && v.entry.object.as_ref().is_some_and(|o| o.subject.is_some())
        });
        assert!(flagged, "case {case} must raise a preventive violation");
    }
    // And consenting trial cases raise no EPR-read violations.
    for (case, t) in &day.truth {
        if t.purpose == cows::sym("clinicaltrial") && !t.consent_withheld && t.injected.is_none() {
            let flagged = report.preventive_violations.iter().any(|v| {
                v.entry.case == *case
                    && v.entry.object.as_ref().is_some_and(|o| o.subject.is_some())
            });
            assert!(!flagged, "consented case {case} must pass Def. 3");
        }
    }
}

#[test]
fn unknown_cases_are_reported_not_dropped() {
    let auditor = hospital_auditor();
    let trail = audit::codec::parse_trail(
        "Bob Cardiologist read [Jane]EPR/Clinical T06 MYSTERY-1 201007060900 success\n",
    )
    .unwrap();
    let report = auditor.audit(&trail);
    assert_eq!(report.cases.len(), 1);
    assert!(matches!(
        report.cases[0].outcome,
        CaseOutcome::Unresolved(_)
    ));
}

#[test]
fn severity_triage_ranks_bulk_sweeps_over_single_slips() {
    // One case with a one-off invalid access vs one case sweeping many
    // subjects: the sweep must triage first.
    let auditor = hospital_auditor();
    let mut text = String::new();
    text.push_str("Bob Cardiologist read [Jane]EPR/Clinical T06 HT-201 201007060900 success\n");
    for (i, p) in ["A", "B", "C", "D", "E", "F"].iter().enumerate() {
        text.push_str(&format!(
            "Bob Cardiologist read [{p}]EPR/Clinical T06 HT-202 2010070609{:02} success\n",
            10 + i
        ));
    }
    let trail = audit::codec::parse_trail(&text).unwrap();
    let report = auditor.audit(&trail);
    assert_eq!(report.infringing_cases(), 2);
    let triage = report.triage();
    assert_eq!(triage[0].case, sym("HT-202"), "the sweep ranks first");
}
