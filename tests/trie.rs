//! Trie-engine equivalence: the prefix-sharing replay trie is a pure
//! memoization of the automaton engine, so every observable output —
//! verdicts, evidence traces, Algorithm-1 counters — must be byte-identical
//! between the two, on every workload and at every thread count. These
//! tests pin that, plus the trie's own counters and its flush path.

use audit::entry::LogEntry;
use audit::samples::figure4_trail;
use audit::trail::AuditTrail;
use bpmn::encode::encode;
use bpmn::models::{clinical_trial, healthcare_treatment};
use cows::symbol::Symbol;
use obs::json::{parse_json, validate};
use obs::Registry;
use policy::hierarchy::RoleHierarchy;
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};
use purpose_control::auditor::{AuditReport, Auditor, ProcessRegistry};
use purpose_control::parallel::audit_parallel;
use purpose_control::replay::{check_case, check_case_with, CheckOptions, Engine};
use purpose_control::{LiveAuditor, LiveConfig, ReplayTrie};
use std::collections::BTreeMap;
use std::sync::Arc;
use workload::dupheavy::{generate_dupheavy, DupHeavyConfig};
use workload::hospital::{generate_day, HospitalConfig};

fn hospital_auditor(engine: Engine) -> Auditor {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    registry.add_case_prefix("DH-", treatment());
    let mut auditor = Auditor::new(registry, extended_hospital_policy(), hospital_context());
    auditor.options.engine = engine;
    auditor
}

fn dupheavy_trail(seed: u64) -> AuditTrail {
    generate_dupheavy(
        &DupHeavyConfig {
            cases: 120,
            archetypes: 3,
            duplicate_fraction: 0.9,
            deviant_fraction: 0.1,
            error_prob: 0.1,
        },
        seed,
    )
    .trail
}

/// The full per-case fingerprint two engines must agree on.
fn report_fingerprint(report: &AuditReport) -> BTreeMap<Symbol, (String, usize, usize)> {
    report
        .cases
        .iter()
        .map(|c| {
            (
                c.case,
                (
                    purpose_control::auditor::outcome_label(&c.outcome).to_string(),
                    c.peak_configurations,
                    c.entries,
                ),
            )
        })
        .collect()
}

/// Satellite: the duplicate-heavy property — 90%+ shared prefixes, trie vs
/// automaton byte-identical verdicts and counters at 1, 2 and 8 threads.
#[test]
fn dupheavy_trie_matches_automaton_at_all_thread_counts() {
    for seed in [7u64, 42] {
        let trail = dupheavy_trail(seed);
        let automaton = hospital_auditor(Engine::Automaton);
        let trie = hospital_auditor(Engine::Trie);
        let baseline = report_fingerprint(&audit_parallel(&automaton, &trail, 1));
        assert!(
            baseline.values().any(|(o, _, _)| o == "infringement"),
            "workload must include deviant cases"
        );
        for threads in [1usize, 2, 8] {
            let got = report_fingerprint(&audit_parallel(&trie, &trail, threads));
            assert_eq!(
                baseline, got,
                "trie diverged from automaton at {threads} threads (seed {seed})"
            );
        }
    }
}

/// The paper's own workloads (Fig. 4 scenario and the hospital day) replay
/// identically under the trie.
#[test]
fn paper_workloads_replay_identically_under_the_trie() {
    let day = generate_day(
        &HospitalConfig {
            target_entries: 400,
            trial_fraction: 0.1,
            attack_fraction: 0.2,
            error_prob: 0.1,
        },
        1337,
    );
    for trail in [figure4_trail(), day.trail] {
        let automaton = hospital_auditor(Engine::Automaton);
        let trie = hospital_auditor(Engine::Trie);
        assert_eq!(
            report_fingerprint(&automaton.audit(&trail)),
            report_fingerprint(&trie.audit(&trail)),
        );
    }
}

/// Evidence traces are byte-identical modulo the provenance engine label.
#[test]
fn evidence_traces_are_identical_modulo_engine_label() {
    let trail = dupheavy_trail(3);
    let mut automaton = hospital_auditor(Engine::Automaton);
    automaton.options.record_evidence = true;
    let mut trie = hospital_auditor(Engine::Trie);
    trie.options.record_evidence = true;
    let a_report = automaton.audit(&trail);
    let t_report = trie.audit(&trail);
    assert_eq!(a_report.cases.len(), t_report.cases.len());
    let mut compared = 0usize;
    for (a, t) in a_report.cases.iter().zip(&t_report.cases) {
        assert_eq!(a.case, t.case);
        let (Some(mut ae), Some(mut te)) = (
            automaton.case_evidence(&trail, a),
            trie.case_evidence(&trail, t),
        ) else {
            assert_eq!(a.evidence.is_some(), t.evidence.is_some());
            continue;
        };
        assert_eq!(ae.engine, "automaton");
        assert_eq!(te.engine, "trie");
        ae.engine.clear();
        te.engine.clear();
        assert_eq!(ae.to_json_line(), te.to_json_line(), "case {}", a.case);
        compared += 1;
    }
    assert!(compared > 50, "only {compared} evidence traces compared");
}

/// The live monitor raises the same alarms through the trie, including
/// under eviction/rehydration pressure (resident cap far below the case
/// count, so sessions round-trip the spill path mid-case).
#[test]
fn live_monitor_matches_under_eviction_pressure() {
    let trail = dupheavy_trail(11);
    let config = LiveConfig {
        max_open_cases: 8,
        ..LiveConfig::default()
    };
    let mut outcomes: Vec<BTreeMap<Symbol, String>> = Vec::new();
    for engine in [Engine::Automaton, Engine::Trie] {
        let mut monitor = LiveAuditor::with_config(hospital_auditor(engine), config.clone());
        for entry in trail.entries() {
            monitor.observe(entry).unwrap();
        }
        let mut by_case: BTreeMap<Symbol, String> = monitor
            .alarms()
            .into_iter()
            .map(|(case, inf)| (case, format!("{:?}", inf.kind)))
            .collect();
        let (retired, errors) = monitor.retire_completed();
        assert!(errors.is_empty(), "{engine:?}: {errors:?}");
        for case in retired {
            by_case.entry(case).or_insert_with(|| "retired".to_string());
        }
        outcomes.push(by_case);
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert!(!outcomes[0].is_empty());
}

/// Trie counters land in the metrics export, under the committed schema.
#[test]
fn trie_counters_export_and_match_schema() {
    let trail = dupheavy_trail(5);
    let metrics = Arc::new(Registry::new());
    purpose_control::register_audit_metrics(&metrics);
    let mut auditor = hospital_auditor(Engine::Trie);
    auditor.metrics = Some(Arc::clone(&metrics));
    audit::trail_stats(&trail).export_into(&metrics);
    let report = audit_parallel(&auditor, &trail, 4);
    assert!(!report.cases.is_empty());
    for purpose in auditor.registry.purposes() {
        let rp = auditor.registry.process_for(purpose).unwrap();
        rp.encoded.automaton.stats().export_into(&metrics);
        rp.trie.stats().export_into(&metrics);
    }
    cows::semantics::cache_stats().export_into(&metrics);

    // On a duplicate-heavy day the cache must dominate: far more steps
    // served from the trie than computed into it.
    let hits = metrics.counter_value("trie_hits");
    let misses = metrics.counter_value("trie_misses");
    assert!(
        hits > 4 * misses.max(1),
        "expected a hit-dominated run, got {hits} hits / {misses} misses"
    );
    assert!(metrics.counter_value("trie_frontiers") > 0);
    assert!(metrics.counter_value("trie_transitions") > 0);
    assert!(metrics.counter_value("trie_bytes") > 0);

    let doc = parse_json(&metrics.to_json()).expect("metrics export parses");
    let schema_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("schemas")
        .join("metrics.schema.json");
    let schema = parse_json(&std::fs::read_to_string(schema_path).unwrap()).unwrap();
    let errors = validate(&doc, &schema);
    assert!(errors.is_empty(), "schema violations: {errors:?}");
}

/// A trie capped to a handful of cached transitions flushes wholesale and
/// recomputes — verdicts must not move.
#[test]
fn tiny_transition_cap_flushes_without_changing_verdicts() {
    let encoded = encode(&healthcare_treatment());
    let h = RoleHierarchy::new();
    let tiny = Arc::new(ReplayTrie::with_max_transitions(
        encoded.automaton.clone(),
        2,
    ));
    let trail = dupheavy_trail(9);
    let trie_opts = CheckOptions {
        engine: Engine::Trie,
        ..CheckOptions::default()
    };
    let auto_opts = CheckOptions {
        engine: Engine::Automaton,
        ..CheckOptions::default()
    };
    let mut checked = 0usize;
    for case in trail.cases() {
        let entries: Vec<&LogEntry> = trail.project_case(case);
        let expected = check_case(&encoded, &h, &entries, &auto_opts).unwrap();
        let got = check_case_with(
            &encoded,
            &h,
            &entries,
            &trie_opts,
            &obs::Recorder::noop(),
            Some(&tiny),
        )
        .unwrap();
        assert_eq!(expected.verdict, got.verdict, "case {case}");
        assert_eq!(expected.explored_successors, got.explored_successors);
        assert_eq!(expected.peak_configurations, got.peak_configurations);
        checked += 1;
    }
    assert!(checked > 100);
    // The cap held: the cache never outgrew its bound.
    assert!(tiny.stats().transitions <= 2);
}

/// A shared trie bound to one role hierarchy refuses to serve a session
/// under a different one — typed error, not silently wrong verdicts.
#[test]
fn trie_bound_to_another_hierarchy_is_refused() {
    let encoded = encode(&healthcare_treatment());
    let trie = Arc::new(ReplayTrie::new(encoded.automaton.clone()));
    let flat = RoleHierarchy::new();
    let hospital = hospital_context().roles().clone();
    trie.bind(&flat).unwrap();
    // Re-binding to the same hierarchy is fine; a different one is not.
    trie.bind(&flat).unwrap();
    let err = trie.bind(&hospital).unwrap_err();
    assert!(matches!(
        err,
        purpose_control::CheckError::EngineConfig { .. }
    ));
}
