//! Churn regression suite (CI job `churn`): a scaled-down P12 hospital
//! day replayed through the sharded live monitor with the resident set
//! capped far below peak concurrency, so every shard is under constant
//! eviction pressure. All invariants are counter-based — a slow runner
//! must never flake this suite — and mirror the P13 acceptance criteria:
//! the churn machinery demonstrably engages, the tiered spill store keeps
//! rehydrations off the disk path, and none of it is visible in the
//! verdicts or the alarm stream.

use purpose_control::auditor::{Auditor, CaseOutcome, ProcessRegistry};
use purpose_control::parallel::audit_parallel;
use purpose_control::replay::Verdict;
use purpose_control::{LiveConfig, ShardedMonitor};
use workload::hospital::{generate_day, HospitalConfig};
use workload::stream::{interleave, peak_concurrency};

use audit::entry::LogEntry;
use bpmn::models::{clinical_trial, healthcare_treatment};
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};

const ENTRIES: usize = 6_000;
const SHARDS: usize = 2;

fn hospital_auditor() -> Auditor {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    Auditor::new(registry, extended_hospital_policy(), hospital_context())
}

/// The P12 workload at CI scale.
fn churn_stream() -> (Vec<LogEntry>, usize, audit::trail::AuditTrail) {
    let day = generate_day(
        &HospitalConfig {
            target_entries: ENTRIES,
            ..HospitalConfig::default()
        },
        42,
    );
    let stream = interleave(&day.trail);
    let peak = peak_concurrency(&stream);
    (stream, peak, day.trail)
}

/// Monitor config with the bench's cap rule (`peak / 8`, floor 2) and a
/// monitor-private spill directory (spill logs are run-scoped, so
/// concurrent monitors must not share one).
fn churn_config(peak: usize, tag: &str) -> LiveConfig {
    let dir = std::env::temp_dir()
        .join("purposectl-tests")
        .join(format!("churn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    LiveConfig {
        max_open_cases: (peak / 8).max(2),
        spill_dir: Some(dir),
        ..LiveConfig::default()
    }
}

#[test]
fn churn_counters_hold_and_verdicts_match_batch() {
    let (stream, peak, trail) = churn_stream();
    let config = churn_config(peak, "counters");
    let mut live = ShardedMonitor::new(hospital_auditor(), &config, SHARDS);
    live.ingest(&stream).unwrap();
    let stats = live.stats();

    // Pressure invariants: the cap bites and cases churn through the
    // spill store, so the counters below measure a loaded system.
    assert!(stats.evictions > 0, "the memory bound must bite");
    assert!(stats.rehydrations > 0, "evicted cases must come back");

    // Tier invariant: rehydration is served from the compressed memory
    // tier; disk demotions stay at least an order of magnitude below the
    // eviction count (the P13 "disk evictions reduced >= 10x" criterion).
    assert!(
        stats.spill_tier_hits > 0,
        "the memory tier must serve rehydrations"
    );
    assert!(
        stats.spill_disk_demotions * 10 <= stats.evictions,
        "disk demotions ({}) must stay >= 10x below evictions ({})",
        stats.spill_disk_demotions,
        stats.evictions
    );

    // Verdict invariant: byte-for-byte the batch auditor's outcome.
    let batch = audit_parallel(&hospital_auditor(), &trail, 2);
    for c in &batch.cases {
        let live_label = match live.snapshot(c.case) {
            None => "unresolved".to_string(),
            Some(Err(e)) => format!("failed: {e}"),
            Some(Ok(check)) => match check.verdict {
                Verdict::Compliant { can_complete } => format!("compliant/{can_complete}"),
                Verdict::Infringement(inf) => format!("infringement@{}", inf.entry_index),
            },
        };
        let batch_label = match &c.outcome {
            CaseOutcome::Compliant { can_complete } => format!("compliant/{can_complete}"),
            CaseOutcome::Infringement { infringement, .. } => {
                format!("infringement@{}", infringement.entry_index)
            }
            CaseOutcome::Unresolved(_) => "unresolved".to_string(),
            other => format!("{other:?}"),
        };
        assert_eq!(
            batch_label, live_label,
            "case {} disagrees between batch and live",
            c.case
        );
    }
}

#[test]
fn checkpoint_resume_is_alarm_identical_under_churn() {
    let (stream, peak, _) = churn_stream();

    let mut straight =
        ShardedMonitor::new(hospital_auditor(), &churn_config(peak, "straight"), SHARDS);
    straight.ingest(&stream).unwrap();

    let mid = stream.len() / 2;
    let mut first = ShardedMonitor::new(hospital_auditor(), &churn_config(peak, "first"), SHARDS);
    first.ingest(&stream[..mid]).unwrap();
    assert!(
        first.stats().evictions > 0,
        "the checkpoint must be taken under pressure"
    );
    let ckpt = first.checkpoint(mid as u64).unwrap();
    drop(first);

    let (mut resumed, offset) = ShardedMonitor::restore(
        hospital_auditor(),
        &churn_config(peak, "resumed"),
        SHARDS,
        &ckpt,
    )
    .unwrap();
    assert_eq!(offset, mid as u64);
    resumed.ingest(&stream[mid..]).unwrap();

    let straight_alarms: Vec<_> = straight.alarms().iter().map(|(c, _)| *c).collect();
    let resumed_alarms: Vec<_> = resumed.alarms().iter().map(|(c, _)| *c).collect();
    assert_eq!(
        straight_alarms, resumed_alarms,
        "resume changed the alarm stream"
    );
}
