//! P5 — the §6 comparison against Petri-net token-replay conformance
//! checking, as integration tests.

use bpmn::encode::encode;
use bpmn::models::healthcare_treatment;
use petri::conformance::{task_log, token_replay, ReplayOptions};
use petri::translate::{translate, TranslateError};
use policy::hierarchy::RoleHierarchy;
use purpose_control::replay::{check_case, CheckOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workload::attacks;
use workload::procgen::{generate, ProcGenConfig};
use workload::simulate::{simulate_case, SimConfig};

/// §6: Petri-net approaches "impose some restrictions on the syntax of
/// BPMN" — the paper's own Fig. 1 process is outside the fragment.
#[test]
fn fig1_is_outside_the_petri_fragment() {
    let err = translate(&healthcare_treatment()).unwrap_err();
    assert!(matches!(err, TranslateError::InclusiveGateway { .. }));
}

/// §6: conformance logs "only refer to activities specified in the business
/// process model" — users, roles and objects are erased, so a wrong-role
/// infringement replays with PERFECT fitness while Algorithm 1 catches it.
#[test]
fn petri_misses_repurposing() {
    let model = generate(&ProcGenConfig::sequential(6), 11);
    let encoded = encode(&model);
    let net = translate(&model).expect("sequential processes translate");
    let mut rng = StdRng::seed_from_u64(5);
    let mut entries = simulate_case(&encoded, "c", &SimConfig::new("P"), &mut rng);
    attacks::wrong_role(&mut entries, &mut StdRng::seed_from_u64(1));

    let refs: Vec<&audit::LogEntry> = entries.iter().collect();
    let fitness = token_replay(&net, &task_log(&refs), &ReplayOptions::default());
    assert!(
        fitness.is_perfect(),
        "task-level replay cannot see the role change: {fitness:?}"
    );

    let verdict = check_case(
        &encoded,
        &RoleHierarchy::new(),
        &refs,
        &CheckOptions::default(),
    )
    .unwrap();
    assert!(
        !verdict.verdict.is_compliant(),
        "Algorithm 1 must flag the wrong-role entry"
    );
}

/// §6: token replay grades ("quantifies the fit"), Algorithm 1 decides.
/// A task-skipping trail loses fitness but stays well above zero, while
/// the exact replay gives a crisp infringement with the deviation point.
#[test]
fn petri_grades_where_algorithm1_decides() {
    let model = generate(&ProcGenConfig::sequential(8), 3);
    let encoded = encode(&model);
    let net = translate(&model).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let mut entries = simulate_case(&encoded, "c", &SimConfig::new("P"), &mut rng);
    let inj = attacks::skip_task(&mut entries, &mut StdRng::seed_from_u64(9));
    assert!(!matches!(inj, workload::Injection::NotApplicable));

    let refs: Vec<&audit::LogEntry> = entries.iter().collect();
    let fitness = token_replay(&net, &task_log(&refs), &ReplayOptions::default());
    assert!(!fitness.is_perfect());
    assert!(
        fitness.fitness() > 0.5,
        "a mostly-valid trail keeps a high degree of fit: {}",
        fitness.fitness()
    );

    let verdict = check_case(
        &encoded,
        &RoleHierarchy::new(),
        &refs,
        &CheckOptions::default(),
    )
    .unwrap();
    match verdict.verdict {
        purpose_control::Verdict::Infringement(inf) => {
            // The deviation point names exactly the first entry after the
            // gap, with the skipped task among the expected activities.
            assert!(!inf.expected.is_empty());
        }
        v => panic!("expected an exact infringement, got {v:?}"),
    }
}

/// On clean trails the two methods agree (fitness 1 ⟺ compliant) across a
/// spread of generated processes — the baseline is only *blind*, not wrong.
#[test]
fn methods_agree_on_clean_trails() {
    for seed in 0..10 {
        let model = generate(&ProcGenConfig::sequential(5), seed);
        let encoded = encode(&model);
        let net = translate(&model).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = simulate_case(&encoded, "c", &SimConfig::new("P"), &mut rng);
        let refs: Vec<&audit::LogEntry> = entries.iter().collect();
        let fitness = token_replay(&net, &task_log(&refs), &ReplayOptions::default());
        assert!(fitness.is_perfect(), "seed {seed}: {fitness:?}");
        let verdict = check_case(
            &encoded,
            &RoleHierarchy::new(),
            &refs,
            &CheckOptions::default(),
        )
        .unwrap();
        assert!(verdict.verdict.is_compliant(), "seed {seed}");
    }
}
