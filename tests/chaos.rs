//! Chaos suite: seeded corruption of a rendered hospital trail, then a
//! degraded-mode (salvage) audit. The invariant under test, per injector
//! and seed:
//!
//! 1. **Survival** — salvage ingestion never fails, and everything it sets
//!    aside carries a typed [`QuarantineReason`].
//! 2. **Verdict stability** — every case whose per-case projection is
//!    untouched by the corruption gets an outcome byte-identical (via
//!    `Debug`) to the clean run's.
//!
//! "Untouched" is *recomputed* from the data (projection diff between the
//! clean and salvaged parses), not taken from the injector's own report —
//! so the suite stays valid for any RNG backend.
//!
//! Seeds come from `CHAOS_SEED` (the CI matrix) or default to a fixed
//! trio so local `cargo test` exercises several corruption layouts.

use audit::codec::{format_trail, parse_trail};
use audit::salvage::{parse_trail_salvage, salvage_chained, Quarantine};
use audit::trail::AuditTrail;
use bpmn::models::{clinical_trial, healthcare_treatment};
use cows::symbol::Symbol;
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};
use purpose_control::auditor::{AuditReport, Auditor, ProcessRegistry};
use purpose_control::parallel::audit_parallel;
use std::collections::BTreeMap;
use workload::hospital::{generate_day, HospitalConfig};
use workload::{tamper_chain, TEXT_INJECTORS};

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => vec![7, 42, 1337],
    }
}

fn hospital_auditor() -> Auditor {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    Auditor::new(registry, extended_hospital_policy(), hospital_context())
}

fn small_day(seed: u64) -> AuditTrail {
    generate_day(
        &HospitalConfig {
            target_entries: 240,
            trial_fraction: 0.1,
            attack_fraction: 0.2,
            error_prob: 0.1,
        },
        seed,
    )
    .trail
}

/// Per-case projection: the canonical rendering of the case's entries, in
/// trail order. Two equal projections replay identically.
fn projections(trail: &AuditTrail) -> BTreeMap<Symbol, Vec<String>> {
    let mut map: BTreeMap<Symbol, Vec<String>> = BTreeMap::new();
    for e in trail.entries() {
        map.entry(e.case).or_default().push(e.to_string());
    }
    map
}

/// Cases present in both trails with identical projections.
fn unaffected_cases(clean: &AuditTrail, salvaged: &AuditTrail) -> Vec<Symbol> {
    let a = projections(clean);
    let b = projections(salvaged);
    a.iter()
        .filter(|(case, proj)| b.get(*case) == Some(proj))
        .map(|(&case, _)| case)
        .collect()
}

fn outcome_by_case(report: &AuditReport) -> BTreeMap<Symbol, String> {
    report
        .cases
        .iter()
        .map(|c| (c.case, format!("{:?}", c.outcome)))
        .collect()
}

fn assert_verdicts_stable(
    clean_trail: &AuditTrail,
    clean: &BTreeMap<Symbol, String>,
    salvaged_trail: &AuditTrail,
    context: &str,
) {
    let auditor = hospital_auditor();
    let degraded = outcome_by_case(&audit_parallel(&auditor, salvaged_trail, 4));
    for case in unaffected_cases(clean_trail, salvaged_trail) {
        assert_eq!(
            clean.get(&case),
            degraded.get(&case),
            "[{context}] verdict drifted for unaffected case {case}"
        );
    }
}

fn assert_typed_reasons(q: &Quarantine, context: &str) {
    assert_eq!(
        q.scanned,
        q.kept + q.lines.len(),
        "[{context}] quarantine accounting must balance"
    );
    for l in &q.lines {
        assert!(!l.reason.label().is_empty());
        assert!(
            !l.text.is_empty(),
            "[{context}] quarantined line {} lost its text",
            l.line
        );
    }
}

#[test]
fn corrupted_trails_survive_salvage_with_stable_verdicts() {
    for seed in seeds() {
        let clean_trail = small_day(seed);
        let text = format_trail(&clean_trail);
        let auditor = hospital_auditor();
        let clean = outcome_by_case(&audit_parallel(&auditor, &clean_trail, 4));

        for kind in TEXT_INJECTORS {
            let context = format!("seed {seed}, {}", kind.label());
            let (corrupt, _) = workload::inject_text(&text, kind, 3, seed);
            let (salvaged, q) = parse_trail_salvage(&corrupt);
            assert_typed_reasons(&q, &context);
            assert_verdicts_stable(&clean_trail, &clean, &salvaged, &context);
        }
    }
}

#[test]
fn tampered_chain_audits_intact_prefix_quarantines_suffix() {
    for seed in seeds() {
        let clean_trail = small_day(seed);
        let auditor = hospital_auditor();
        let clean = outcome_by_case(&audit_parallel(&auditor, &clean_trail, 4));

        let (chained, report) = tamper_chain(&clean_trail, seed);
        assert!(chained.verify().is_err(), "tampering must break the chain");
        let (salvaged, q) = salvage_chained(&chained);
        let context = format!("seed {seed}, chain-tamper");

        let first_bad = report.hit_lines[0] - 1;
        assert_eq!(salvaged.len(), first_bad, "[{context}] prefix length");
        assert_eq!(
            q.lines.len(),
            clean_trail.len() - first_bad,
            "[{context}] suffix quarantined"
        );
        assert!(q
            .lines
            .iter()
            .all(|l| l.reason.label() == "chain-break-suffix"));
        assert_typed_reasons(&q, &context);
        assert_verdicts_stable(&clean_trail, &clean, &salvaged, &context);
    }
}

#[test]
fn clean_trail_salvage_is_a_noop_with_identical_verdicts() {
    let clean_trail = small_day(2026);
    let text = format_trail(&clean_trail);
    let strict = parse_trail(&text).unwrap();
    let (salvaged, q) = parse_trail_salvage(&text);
    assert!(q.is_clean(), "clean text must not quarantine anything: {q}");
    assert_eq!(strict, salvaged);

    let auditor = hospital_auditor();
    let clean = outcome_by_case(&audit_parallel(&auditor, &clean_trail, 4));
    let degraded = outcome_by_case(&audit_parallel(&auditor, &salvaged, 4));
    assert_eq!(clean, degraded);
}

// --- golden corrupted corpus (rand-independent) -------------------------

#[test]
fn golden_mixed_corruption_quarantines_exactly() {
    let text = include_str!("fixtures/corrupted_mixed.trail");
    let (trail, q) = parse_trail_salvage(text);
    assert_eq!(q.scanned, 10);
    assert_eq!(q.kept, 5);
    assert_eq!(trail.len(), 5);
    assert!(trail.is_chronological());

    let got: Vec<(usize, &'static str)> =
        q.lines.iter().map(|l| (l.line, l.reason.label())).collect();
    assert_eq!(
        got,
        vec![
            (4, "bad-column-count"),
            (5, "duplicate-entry"),
            (6, "bad-action"),
            (7, "bad-time"),
            (8, "bad-status"),
        ]
    );
    assert_eq!(q.out_of_order.len(), 1);
    assert_eq!(q.out_of_order[0].line, 10);
    // Every quarantine record carries the offending text.
    assert!(q.lines.iter().all(|l| !l.text.is_empty()));
}

#[test]
fn clock_skew_does_not_spuriously_evict_the_skewed_case() {
    // Regression for the live-monitor clock-regression bug: a future-
    // skewed entry inflates the monitor's high-water mark, and the same
    // case's *subsequent* (normal-time) entries regress relative to it.
    // `last_seen` is monotone per case, so the case that owns the skewed
    // entry is at the high-water instant and the idle sweep must never
    // evict it right after it was touched.
    use purpose_control::live::{LiveAuditor, LiveConfig};
    for seed in seeds() {
        let clean_trail = small_day(seed);
        let text = format_trail(&clean_trail);
        let (corrupt, _) = workload::inject_text(&text, workload::ChaosKind::ClockSkew, 1, seed);
        // Deliver the corrupt stream the way a tailing monitor receives
        // it: small poll chunks, each salvage-parsed on its own. Sorting
        // happens within a chunk only, so the future-skewed entry is
        // observed *before* later chunks' normal-time entries — a real
        // per-case clock regression at the monitor boundary.
        let chunks: Vec<AuditTrail> = corrupt
            .lines()
            .collect::<Vec<_>>()
            .chunks(8)
            .map(|c| {
                let mut s = c.join("\n");
                s.push('\n');
                parse_trail_salvage(&s).0
            })
            .collect();
        let max_time = chunks
            .iter()
            .flat_map(|t| t.entries())
            .map(|e| e.time)
            .max()
            .expect("non-empty trail");
        let skewed_case = chunks
            .iter()
            .flat_map(|t| t.entries())
            .find(|e| e.time == max_time)
            .unwrap()
            .case;
        let mut monitor = LiveAuditor::with_config(
            hospital_auditor(),
            LiveConfig {
                idle_eviction: Some(60),
                ..LiveConfig::default()
            },
        );
        let mut skew_seen = false;
        for chunk in &chunks {
            for e in chunk.entries() {
                monitor.observe(e).unwrap();
                if e.time == max_time {
                    skew_seen = true;
                }
                if skew_seen && e.case == skewed_case {
                    // The case that owns the skewed entry sits at the
                    // high-water mark; an idle sweep right after one of
                    // its (possibly regressed) entries must keep it.
                    let evicted = monitor.maintain().unwrap();
                    assert!(
                        !evicted.contains(&skewed_case),
                        "seed {seed}: idle sweep evicted the case it just saw"
                    );
                }
            }
        }
    }
}

#[test]
fn golden_shuffled_trail_matches_strict_parse_and_reports_disorder() {
    let text = include_str!("fixtures/shuffled.trail");
    let strict = parse_trail(text).unwrap();
    let (salvaged, q) = parse_trail_salvage(text);
    assert_eq!(strict, salvaged);
    assert!(salvaged.is_chronological());
    assert!(q.lines.is_empty());
    let lines: Vec<usize> = q.out_of_order.iter().map(|o| o.line).collect();
    assert_eq!(lines, vec![3, 4]);
}
