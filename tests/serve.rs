//! End-to-end protocol harness for `purposectl serve`.
//!
//! The service is tested the way an operator meets it: as a black-box
//! child process on an ephemeral port, driven over real TCP with the
//! minimal in-repo HTTP client (`serve::client`). Three properties anchor
//! the suite, mirroring the streaming-equivalence contract the live
//! monitor already carries:
//!
//! 1. **Serve/batch identity** — verdicts served over HTTP for the P12
//!    hospital-day workload, split across 3 tenants by the shared
//!    `case_key` routing, are byte-identical to `audit_parallel` over the
//!    same trail in-process.
//! 2. **Resume identity** — `kill -TERM` mid-stream, restart against the
//!    same checkpoint directory, submit the remainder from the reported
//!    stream offset: the final alarm set is identical to an uninterrupted
//!    run (and to batch).
//! 3. **Backpressure honesty** — a tiny watermark forces `429`s; retrying
//!    whole batches until accepted loses nothing and reorders nothing,
//!    proven by the same verdict-identity check.
//!
//! Workload size: `SERVE_E2E_ENTRIES` (default 12 000 in tier-1; CI's
//! serve-smoke and the P14 bench drive the full 120 000-entry P12 shape).
//!
//! The protocol-conformance battery and the 8-thread soak (`--ignored
//! soak`) live here too, sharing the same child-process harness.

use audit::entry::LogEntry;
use audit::trail::AuditTrail;
use bpmn::models::{clinical_trial, healthcare_treatment};
use policy::samples::{
    clinical_trial_purpose, extended_hospital_policy, hospital_context, treatment,
};
use purpose_control::auditor::{Auditor, CaseOutcome, ProcessRegistry};
use purpose_control::parallel::audit_parallel;
use serve::client::{raw, request, Response};
use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use workload::hospital::{generate_day, HospitalConfig};
use workload::stream::interleave;

const TENANTS: [&str; 3] = ["north", "south", "east"];

fn e2e_entries() -> usize {
    std::env::var("SERVE_E2E_ENTRIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12_000)
}

// ---------------------------------------------------------------------------
// Child-process harness
// ---------------------------------------------------------------------------

fn purposectl_bin() -> PathBuf {
    // This test binary sits in target/<profile>/deps/; the CLI binary one
    // level up. `cargo test` compiles the whole workspace (including the
    // purposectl bin) before running any test, so it exists by now.
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.push("purposectl");
    assert!(
        path.exists(),
        "purposectl binary not found at {} — run the full `cargo test` (workspace build) first",
        path.display()
    );
    path
}

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// Boot `purposectl serve` with the hospital tenant universe and wait
    /// for the `serving on <addr>` line.
    fn spawn(tenants: &[&str], extra: &[&str]) -> ServerProc {
        let mut cmd = Command::new(purposectl_bin());
        cmd.args([
            "serve",
            "--tenants",
            &tenants.join(","),
            "--process",
            "treatment=@healthcare_treatment",
            "--process",
            "clinical_trial=@clinical_trial",
            "--map",
            "HT-=treatment",
            "--map",
            "CT-=clinical_trial",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        // Inherit stderr: a panic inside the server must surface in the
        // test log, not vanish into /dev/null.
        .stderr(Stdio::inherit());
        let mut child = cmd.spawn().expect("spawn purposectl serve");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            assert!(
                Instant::now() < deadline,
                "server did not report its address"
            );
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(addr) = line.strip_prefix("serving on ") {
                        break addr.trim().to_string();
                    }
                }
                other => panic!("server exited before binding: {other:?}"),
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines.by_ref() {});
        ServerProc { child, addr }
    }

    fn get(&self, path: &str) -> Response {
        request(&self.addr, "GET", path, "").expect("GET")
    }

    fn post(&self, path: &str, body: &str) -> Response {
        request(&self.addr, "POST", path, body).expect("POST")
    }

    /// SIGTERM and wait for the graceful drain to finish.
    fn terminate(mut self) {
        let pid = self.child.id().to_string();
        let status = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("send SIGTERM");
        assert!(status.success(), "kill -TERM failed");
        let status = self.child.wait().expect("wait for child");
        assert!(status.success(), "server exited uncleanly: {status:?}");
    }

    /// Wait until every listed tenant's queue is drained.
    fn quiesce(&self, tenants: &[&str]) {
        let deadline = Instant::now() + Duration::from_secs(120);
        for tenant in tenants {
            loop {
                assert!(Instant::now() < deadline, "tenant {tenant} never drained");
                let verdicts = self.get(&format!("/v1/{tenant}/verdicts"));
                assert_eq!(verdicts.status, 200);
                let doc = obs::parse_json(&verdicts.body).expect("verdicts JSON");
                let queued = number(&doc, "queued");
                if queued == 0.0 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn number(doc: &obs::JsonValue, key: &str) -> f64 {
    match doc.get(key) {
        Some(obs::JsonValue::Number(n)) => *n,
        other => panic!("field `{key}` missing or non-numeric: {other:?}"),
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("purposectl-tests")
        .join(format!("serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

// ---------------------------------------------------------------------------
// Workload plumbing
// ---------------------------------------------------------------------------

fn hospital_auditor() -> Auditor {
    let mut registry = ProcessRegistry::new();
    registry.register(treatment(), healthcare_treatment());
    registry.register(clinical_trial_purpose(), clinical_trial());
    registry.add_case_prefix("HT-", treatment());
    registry.add_case_prefix("CT-", clinical_trial_purpose());
    Auditor::new(registry, extended_hospital_policy(), hospital_context())
}

/// The canonical comparable label — matches `serve`'s `verdict` field.
fn batch_labels(trail: &AuditTrail) -> BTreeMap<String, String> {
    audit_parallel(&hospital_auditor(), trail, 4)
        .cases
        .iter()
        .map(|c| {
            let label = match &c.outcome {
                CaseOutcome::Compliant { can_complete } => {
                    format!("compliant complete={can_complete}")
                }
                CaseOutcome::Infringement {
                    infringement,
                    severity,
                } => format!(
                    "infringement@{} severity={:.4}",
                    infringement.entry_index, severity.score
                ),
                other => format!("{other:?}"),
            };
            (c.case.to_string(), label)
        })
        .collect()
}

/// The P12 hospital day at the requested scale, in arrival order.
fn p12_stream(entries: usize) -> (AuditTrail, Vec<LogEntry>) {
    let day = generate_day(
        &HospitalConfig {
            target_entries: entries,
            ..HospitalConfig::default()
        },
        42,
    );
    let stream = interleave(&day.trail);
    (day.trail, stream)
}

/// Split a stream across the 3 tenants with the shared routing helper —
/// the same derivation `shard_of` uses inside every monitor, so `watch`
/// and `serve` agree on where a case lands (see the routing pin test).
fn split_by_tenant(stream: &[LogEntry]) -> BTreeMap<&'static str, Vec<String>> {
    let mut per: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
    for t in TENANTS {
        per.insert(t, Vec::new());
    }
    for entry in stream {
        let key = audit::case_key(entry.case.as_str());
        let tenant = TENANTS[audit::partition_of(key, TENANTS.len())];
        per.get_mut(tenant).unwrap().push(entry.to_string());
    }
    per
}

/// Submit `lines` to a tenant in fixed-size batches, retrying whole
/// batches on 429 — the documented client contract under backpressure.
fn submit_all(server: &ServerProc, tenant: &str, lines: &[String], batch: usize) -> (u64, u64) {
    let (mut accepted, mut rejections) = (0u64, 0u64);
    for chunk in lines.chunks(batch.max(1)) {
        let body = format!("{}\n", chunk.join("\n"));
        // A 429 that never clears means the ingest worker died: fail
        // loudly instead of retrying forever.
        let stuck = Instant::now() + Duration::from_secs(60);
        loop {
            let resp = server.post(&format!("/v1/{tenant}/entries"), &body);
            match resp.status {
                202 => {
                    let doc = obs::parse_json(&resp.body).expect("accept JSON");
                    accepted += number(&doc, "accepted") as u64;
                    break;
                }
                429 => {
                    rejections += 1;
                    assert!(
                        resp.header("Retry-After").is_some(),
                        "429 without Retry-After"
                    );
                    assert!(
                        Instant::now() < stuck,
                        "tenant {tenant}: backpressure never released (worker dead?)"
                    );
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => panic!("unexpected submit status {other}: {}", resp.body),
            }
        }
    }
    (accepted, rejections)
}

/// Fetch every case's served verdict label for the tenant split.
fn served_labels(
    server: &ServerProc,
    split: &BTreeMap<&'static str, Vec<String>>,
    trail: &AuditTrail,
) -> BTreeMap<String, String> {
    let mut labels = BTreeMap::new();
    for case in trail.cases() {
        let key = audit::case_key(case.as_str());
        let tenant = TENANTS[audit::partition_of(key, TENANTS.len())];
        assert!(
            !split[tenant].is_empty(),
            "tenant {tenant} unexpectedly empty"
        );
        let resp = server.get(&format!("/v1/{tenant}/cases/{case}"));
        assert_eq!(resp.status, 200, "case {case}: {}", resp.body);
        let doc = obs::parse_json(&resp.body).expect("case JSON");
        let verdict = doc
            .get("verdict")
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("case {case}: no verdict in {}", resp.body));
        labels.insert(case.to_string(), verdict.to_string());
    }
    labels
}

// ---------------------------------------------------------------------------
// (a) Serve/batch verdict identity on the split P12 workload
// ---------------------------------------------------------------------------

#[test]
fn served_verdicts_match_audit_parallel_on_split_p12_workload() {
    let (trail, stream) = p12_stream(e2e_entries());
    let batch = batch_labels(&trail);
    let split = split_by_tenant(&stream);

    let server = ServerProc::spawn(&TENANTS, &["--shards", "4"]);
    for (tenant, lines) in &split {
        let (accepted, _) = submit_all(&server, tenant, lines, 2_000);
        assert_eq!(accepted, lines.len() as u64, "tenant {tenant} lost lines");
    }
    server.quiesce(&TENANTS);

    let served = served_labels(&server, &split, &trail);
    assert_eq!(
        served.len(),
        batch.len(),
        "served case set differs from batch"
    );
    for (case, batch_label) in &batch {
        assert_eq!(
            served.get(case),
            Some(batch_label),
            "case {case}: served verdict diverged from audit_parallel"
        );
    }
    server.terminate();
}

// ---------------------------------------------------------------------------
// (b) SIGTERM mid-stream → restart → resume: identical alarm set
// ---------------------------------------------------------------------------

fn alarmed_cases(server: &ServerProc, tenants: &[&str]) -> Vec<String> {
    let mut alarmed = Vec::new();
    for tenant in tenants {
        let resp = server.get(&format!("/v1/{tenant}/verdicts"));
        assert_eq!(resp.status, 200);
        let doc = obs::parse_json(&resp.body).expect("verdicts JSON");
        if let Some(list) = doc.get("alarmed").and_then(|v| v.as_array()) {
            alarmed.extend(
                list.iter()
                    .filter_map(|v| v.as_str())
                    .map(|s| s.to_string()),
            );
        }
    }
    alarmed.sort();
    alarmed
}

#[test]
fn sigterm_restart_resume_yields_identical_alarm_set() {
    let (trail, stream) = p12_stream((e2e_entries() / 2).max(4_000));
    let batch = batch_labels(&trail);
    let mut expected_alarms: Vec<String> = batch
        .iter()
        .filter(|(_, label)| label.starts_with("infringement@"))
        .map(|(case, _)| case.clone())
        .collect();
    expected_alarms.sort();
    assert!(
        !expected_alarms.is_empty(),
        "workload must contain infringements for this test to bite"
    );

    let split = split_by_tenant(&stream);
    let ckpt = scratch_dir("resume");
    let ckpt_flag = ckpt.to_str().unwrap().to_string();

    // Phase 1: submit roughly half of each tenant's stream, then SIGTERM.
    let server = ServerProc::spawn(&TENANTS, &["--checkpoint-dir", &ckpt_flag]);
    for (tenant, lines) in &split {
        let half = lines.len() / 2;
        submit_all(&server, tenant, &lines[..half], 1_000);
    }
    server.terminate();
    for tenant in TENANTS {
        assert!(
            ckpt.join(format!("{tenant}.ckpt")).exists(),
            "tenant {tenant}: no checkpoint on disk after SIGTERM"
        );
    }

    // Phase 2: restart against the same checkpoint dir; resume each
    // tenant from its reported stream offset (the drain audited every
    // accepted entry, so offset == lines submitted).
    let server = ServerProc::spawn(&TENANTS, &["--checkpoint-dir", &ckpt_flag]);
    for (tenant, lines) in &split {
        let resp = server.get(&format!("/v1/{tenant}/verdicts"));
        let doc = obs::parse_json(&resp.body).expect("verdicts JSON");
        let offset = number(&doc, "audited") as usize;
        assert_eq!(
            offset,
            lines.len() / 2,
            "tenant {tenant}: wrong resume offset"
        );
        submit_all(&server, tenant, &lines[offset..], 1_000);
    }
    server.quiesce(&TENANTS);

    let served_alarms = alarmed_cases(&server, &TENANTS);
    assert_eq!(
        served_alarms, expected_alarms,
        "alarm set after SIGTERM/restart/resume diverged from batch"
    );

    // The served verdicts (not just the alarm set) still match batch.
    let served = served_labels(&server, &split, &trail);
    for (case, batch_label) in &batch {
        assert_eq!(served.get(case), Some(batch_label), "case {case} diverged");
    }
    server.terminate();
}

// ---------------------------------------------------------------------------
// (c) Backpressure engages and releases without dropping or reordering
// ---------------------------------------------------------------------------

#[test]
fn backpressure_engages_and_releases_without_loss_or_reorder() {
    let (trail, stream) = p12_stream(4_000);
    let batch = batch_labels(&trail);
    let split = split_by_tenant(&stream);

    // Watermark slightly above the batch size: an empty queue always
    // admits (whole-batch admission needs kept <= watermark), but any
    // in-flight batch still being ingested pushes the next submit over
    // the line, so every tenant collides at least once.
    let server = ServerProc::spawn(&TENANTS, &["--watermark", "450"]);
    let mut total_rejections = 0;
    for (tenant, lines) in &split {
        let (accepted, rejections) = submit_all(&server, tenant, lines, 400);
        assert_eq!(accepted, lines.len() as u64, "tenant {tenant} lost lines");
        total_rejections += rejections;
    }
    assert!(
        total_rejections > 0,
        "watermark 450 never produced a 429 — backpressure untested"
    );
    server.quiesce(&TENANTS);

    // Release: identical verdicts prove nothing was dropped or reordered
    // (replay is order-sensitive within a case).
    let served = served_labels(&server, &split, &trail);
    for (case, batch_label) in &batch {
        assert_eq!(
            served.get(case),
            Some(batch_label),
            "case {case}: verdict diverged after backpressure"
        );
    }

    // And the queue admits again after draining.
    let resp = server.post("/v1/north/entries", "");
    assert_eq!(resp.status, 202);
    server.terminate();
}

// ---------------------------------------------------------------------------
// Routing pin: watch and serve agree on where a case lands
// ---------------------------------------------------------------------------

#[test]
fn case_routing_identical_between_watch_and_serve() {
    // The sharded monitor behind `watch` and the tenant split used here
    // both derive from audit::case_key. Pin the identity and the concrete
    // key values: a drift in either silently re-routes resumed cases.
    for (case, key) in [
        ("HT-1", 17091474390041204403u64),
        ("HT-11", 6147588363976193069),
        ("CT-930", 14829406528405344453),
    ] {
        assert_eq!(audit::case_key(case), key, "case_key({case}) drifted");
        for shards in [1usize, 2, 3, 4, 8] {
            assert_eq!(
                purpose_control::shard_of(cows::sym(case), shards),
                audit::partition_of(key, shards),
                "watch ({case}, {shards} shards) routes differently from serve"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol conformance battery
// ---------------------------------------------------------------------------

struct ProtoCase {
    name: &'static str,
    /// Either a well-formed request (method, path, body) or raw bytes.
    send: Send,
    expect_status: u16,
    /// JSON schema the body must validate against.
    schema: &'static str,
}

enum Send {
    Req(&'static str, &'static str, &'static str),
    Raw(Vec<u8>),
}

const ERROR_SCHEMA: &str = r#"{
  "type": "object", "additionalProperties": false,
  "required": ["error"],
  "properties": { "error": { "type": "string" } }
}"#;

const ACCEPT_SCHEMA: &str = r#"{
  "type": "object", "additionalProperties": false,
  "required": ["tenant", "accepted", "quarantined", "queued"],
  "properties": {
    "tenant": { "type": "string" },
    "accepted": { "type": "number" },
    "quarantined": { "type": "number" },
    "queued": { "type": "number" }
  }
}"#;

const VERDICTS_SCHEMA: &str = r#"{
  "type": "object", "additionalProperties": false,
  "required": ["tenant", "open", "tracked", "alarmed", "audited", "queued"],
  "properties": {
    "tenant": { "type": "string" },
    "open": { "type": "number" },
    "tracked": { "type": "number" },
    "alarmed": { "type": "array", "items": { "type": "string" } },
    "audited": { "type": "number" },
    "queued": { "type": "number" }
  }
}"#;

const HEALTH_SCHEMA: &str = r#"{
  "type": "object", "additionalProperties": false,
  "required": ["status", "tenants", "failed"],
  "properties": {
    "status": { "type": "string", "enum": ["ok", "degraded"] },
    "tenants": { "type": "number" },
    "failed": { "type": "array", "items": { "type": "string" } }
  }
}"#;

const BACKPRESSURE_SCHEMA: &str = r#"{
  "type": "object", "additionalProperties": false,
  "required": ["error", "queued", "watermark"],
  "properties": {
    "error": { "type": "string", "enum": ["backpressure"] },
    "queued": { "type": "number" },
    "watermark": { "type": "number" }
  }
}"#;

#[test]
fn protocol_conformance_battery() {
    // A single header far past the default 16 KiB bound.
    let huge_header = format!(
        "GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
        "x".repeat(20 * 1024)
    )
    .into_bytes();

    let cases = [
        ProtoCase {
            name: "healthz ok",
            send: Send::Req("GET", "/healthz", ""),
            expect_status: 200,
            schema: HEALTH_SCHEMA,
        },
        ProtoCase {
            name: "healthz wrong method",
            send: Send::Req("POST", "/healthz", ""),
            expect_status: 405,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "metrics wrong method",
            send: Send::Req("DELETE", "/metrics", ""),
            expect_status: 405,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "submit empty batch",
            send: Send::Req("POST", "/v1/north/entries", ""),
            expect_status: 202,
            schema: ACCEPT_SCHEMA,
        },
        ProtoCase {
            name: "verdicts ok",
            send: Send::Req("GET", "/v1/north/verdicts", ""),
            expect_status: 200,
            schema: VERDICTS_SCHEMA,
        },
        ProtoCase {
            name: "unknown tenant",
            send: Send::Req("GET", "/v1/nobody/verdicts", ""),
            expect_status: 404,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "unknown case",
            send: Send::Req("GET", "/v1/north/cases/ZZ-404", ""),
            expect_status: 404,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "unknown resource",
            send: Send::Req("GET", "/v1/north/nope", ""),
            expect_status: 404,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "root not found",
            send: Send::Req("GET", "/", ""),
            expect_status: 404,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "entries wrong method",
            send: Send::Req("GET", "/v1/north/entries", ""),
            expect_status: 405,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "checkpoint wrong method",
            send: Send::Req("GET", "/admin/checkpoint", ""),
            expect_status: 405,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "checkpoint without dir",
            send: Send::Req("POST", "/admin/checkpoint", ""),
            expect_status: 409,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "malformed request line",
            send: Send::Raw(b"this is not http\r\n\r\n".to_vec()),
            expect_status: 400,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "lowercase method",
            send: Send::Raw(b"get /healthz HTTP/1.1\r\n\r\n".to_vec()),
            expect_status: 400,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "bad content-length",
            send: Send::Raw(
                b"POST /v1/north/entries HTTP/1.1\r\nContent-Length: nope\r\n\r\n".to_vec(),
            ),
            expect_status: 400,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "oversized body",
            // Server runs with --max-body-kib 4; declare 5 KiB.
            send: Send::Raw(
                b"POST /v1/north/entries HTTP/1.1\r\nContent-Length: 5120\r\n\r\n".to_vec(),
            ),
            expect_status: 413,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "oversized header block",
            send: Send::Raw(huge_header),
            expect_status: 431,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "truncated chunked upload",
            send: Send::Raw(
                b"POST /v1/north/entries HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n10\r\nonly-part"
                    .to_vec(),
            ),
            expect_status: 400,
            schema: ERROR_SCHEMA,
        },
        ProtoCase {
            name: "well-formed chunked upload",
            send: Send::Raw(
                b"POST /v1/north/entries HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"
                    .to_vec(),
            ),
            expect_status: 202,
            schema: ACCEPT_SCHEMA,
        },
        ProtoCase {
            name: "backpressure shape",
            // Watermark 0 on the `tiny` server: any nonempty batch is refused.
            send: Send::Req(
                "POST",
                "/v1/tiny/entries",
                "John GP read [Jane]EPR/Clinical T01 HT-1 201003121210 success\n",
            ),
            expect_status: 429,
            schema: BACKPRESSURE_SCHEMA,
        },
    ];

    // Watermark is service-wide, so the backpressure case gets its own
    // watermark-0 server; everything else targets the main one.
    let server = ServerProc::spawn(&TENANTS, &["--max-body-kib", "4"]);
    let tiny = ServerProc::spawn(&["tiny"], &["--watermark", "0"]);

    for case in &cases {
        let target = match &case.send {
            Send::Req(_, path, _) if path.starts_with("/v1/tiny") => &tiny,
            _ => &server,
        };
        let resp = match &case.send {
            Send::Req(method, path, body) => {
                request(&target.addr, method, path, body).expect(case.name)
            }
            Send::Raw(bytes) => raw(&target.addr, bytes).expect(case.name),
        };
        assert_eq!(
            resp.status, case.expect_status,
            "{}: wrong status (body: {})",
            case.name, resp.body
        );
        let schema = obs::parse_json(case.schema).expect("schema parses");
        let doc = obs::parse_json(&resp.body)
            .unwrap_or_else(|e| panic!("{}: body is not JSON ({e}): {}", case.name, resp.body));
        let errors = obs::validate(&doc, &schema);
        assert!(
            errors.is_empty(),
            "{}: body shape invalid: {errors:?}\n{}",
            case.name,
            resp.body
        );
        // The server must survive every case — including the ones that
        // poison their own connection.
        let alive = target.get("/healthz");
        assert_eq!(alive.status, 200, "{}: server died", case.name);
    }
    server.terminate();
    tiny.terminate();
}

// ---------------------------------------------------------------------------
// Concurrency soak (scheduled CI only): 8 threads, ≥10s, counter invariant
// ---------------------------------------------------------------------------

#[test]
#[ignore = "soak: ≥10s wall clock; run with `cargo test -- --ignored soak`"]
fn soak_eight_threads_preserve_counter_invariant() {
    let (_, stream) = p12_stream(6_000);
    let lines: Vec<String> = stream.iter().map(|e| e.to_string()).collect();
    let ckpt = scratch_dir("soak");
    let server = ServerProc::spawn(
        &["soak"],
        &[
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
            "--watermark",
            "50000",
        ],
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = server.addr.clone();

    std::thread::scope(|scope| {
        // 4 submitters: clean batches, dirty batches (some malformed lines).
        for worker in 0..4 {
            let addr = addr.clone();
            let lines = &lines;
            scope.spawn(move || {
                let mut i = worker * 97;
                while Instant::now() < deadline {
                    let start = i % lines.len();
                    let end = (start + 50).min(lines.len());
                    let mut body = lines[start..end].join("\n");
                    if worker == 3 {
                        body.push_str("\nthis line is garbage\n");
                    } else {
                        body.push('\n');
                    }
                    let stuck = Instant::now() + Duration::from_secs(60);
                    loop {
                        let resp =
                            request(&addr, "POST", "/v1/soak/entries", &body).expect("submit");
                        match resp.status {
                            202 => break,
                            429 => {
                                assert!(
                                    Instant::now() < stuck,
                                    "soak: backpressure never released (worker dead?)"
                                );
                                std::thread::sleep(Duration::from_millis(10));
                            }
                            other => panic!("soak submit: status {other}"),
                        }
                    }
                    i += 131;
                }
            });
        }
        // 2 readers: verdicts + random case queries.
        for _ in 0..2 {
            let addr = addr.clone();
            scope.spawn(move || {
                while Instant::now() < deadline {
                    let resp = request(&addr, "GET", "/v1/soak/verdicts", "").expect("verdicts");
                    assert_eq!(resp.status, 200);
                    let resp =
                        request(&addr, "GET", "/v1/soak/cases/HT-1", "").expect("case query");
                    assert!(resp.status == 200 || resp.status == 404);
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
        // 1 checkpointer.
        {
            let addr = addr.clone();
            scope.spawn(move || {
                while Instant::now() < deadline {
                    let resp = request(&addr, "POST", "/admin/checkpoint", "").expect("checkpoint");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    std::thread::sleep(Duration::from_millis(200));
                }
            });
        }
        // 1 scraper.
        {
            let addr = addr.clone();
            scope.spawn(move || {
                while Instant::now() < deadline {
                    let resp = request(&addr, "GET", "/metrics", "").expect("scrape");
                    assert_eq!(resp.status, 200);
                    std::thread::sleep(Duration::from_millis(50));
                }
            });
        }
    });

    // Quiesce, then check the closed-vocabulary invariant:
    //   accepted = audited + quarantined + queued
    server.quiesce(&["soak"]);
    let resp = server.get("/v1/soak/metrics");
    assert_eq!(resp.status, 200);
    let doc = obs::parse_json(&resp.body).expect("metrics JSON");
    let counters = doc.get("counters").expect("counters object");
    let gauges = doc.get("gauges").expect("gauges object");
    let accepted = number(counters, "serve_lines_accepted");
    let audited = number(counters, "serve_entries_audited");
    let quarantined = number(counters, "serve_lines_quarantined");
    let queued = number(gauges, "serve_queue_depth");
    assert_eq!(
        accepted,
        audited + quarantined + queued,
        "counter invariant violated: accepted={accepted} audited={audited} \
         quarantined={quarantined} queued={queued}"
    );
    assert!(accepted > 0.0, "soak accepted nothing");

    // The metrics document itself validates against the closed schema.
    let schema_text = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("schemas/metrics.schema.json"),
    )
    .expect("schema file");
    let schema = obs::parse_json(&schema_text).expect("schema parses");
    let errors = obs::validate(&doc, &schema);
    assert!(errors.is_empty(), "metrics schema violations: {errors:?}");

    server.terminate();
}

// ---------------------------------------------------------------------------
// Observability: scrape-under-load, span trees, flight recorder
// ---------------------------------------------------------------------------

fn load_schema(name: &str) -> obs::JsonValue {
    let text = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("schemas/{name}")),
    )
    .expect("schema file");
    obs::parse_json(&text).expect("schema parses")
}

/// Sum of every `purposectl_<counter>{...}` sample in a Prometheus
/// exposition (the multi-tenant export emits one line per tenant label).
fn prom_counter_sum(body: &str, counter: &str) -> f64 {
    let bare = format!("purposectl_{counter} ");
    let labeled = format!("purposectl_{counter}{{");
    body.lines()
        .filter(|l| l.starts_with(&bare) || l.starts_with(&labeled))
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or_else(|| panic!("unparsable sample line: {l:?}"))
        })
        .sum()
}

/// Satellite (c): eight scraper threads hammer `GET /metrics` while a
/// writer streams entries in. Every scrape must be a complete, well-formed
/// exposition (no torn writes, no half-rendered lines) and the accepted
/// counter must be monotone within each scraper's view.
#[test]
fn metrics_scrape_under_load_is_never_torn() {
    let (_, stream) = p12_stream(4_000);
    let split = split_by_tenant(&stream);
    let server = ServerProc::spawn(&TENANTS, &["--watermark", "100000"]);
    let addr = server.addr.clone();
    let done = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|scope| {
        let done = &done;
        // 8 scrapers, each checking exposition integrity + monotonicity.
        for _ in 0..8 {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut last_accepted = 0.0f64;
                let mut scrapes = 0u32;
                while !done.load(std::sync::atomic::Ordering::Relaxed) || scrapes == 0 {
                    let resp = request(&addr, "GET", "/metrics", "").expect("scrape");
                    assert_eq!(resp.status, 200);
                    assert!(
                        resp.body.ends_with('\n'),
                        "torn exposition: body does not end in newline"
                    );
                    for line in resp.body.lines() {
                        if line.is_empty() || line.starts_with('#') {
                            continue;
                        }
                        assert!(
                            line.starts_with("purposectl_"),
                            "stray exposition line: {line:?}"
                        );
                        let value = line.rsplit(' ').next().unwrap_or("");
                        assert!(
                            value.parse::<f64>().is_ok()
                                || matches!(value, "+Inf" | "-Inf" | "NaN"),
                            "unparsable sample value in line: {line:?}"
                        );
                    }
                    let accepted = prom_counter_sum(&resp.body, "serve_lines_accepted");
                    assert!(
                        accepted >= last_accepted,
                        "accepted counter went backwards: {last_accepted} -> {accepted}"
                    );
                    last_accepted = accepted;
                    scrapes += 1;
                }
            });
        }
        // 1 writer: stream every tenant's lines in small batches.
        for (tenant, lines) in &split {
            for chunk in lines.chunks(200) {
                let body = format!("{}\n", chunk.join("\n"));
                let resp = request(&addr, "POST", &format!("/v1/{tenant}/entries"), &body)
                    .expect("submit");
                assert_eq!(resp.status, 202, "{}", resp.body);
            }
        }
        server.quiesce(&TENANTS);
        done.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // After the dust settles the counter equals the workload size.
    let resp = server.get("/metrics");
    let accepted = prom_counter_sum(&resp.body, "serve_lines_accepted");
    assert_eq!(accepted as usize, stream.len(), "accepted != submitted");
    server.terminate();
}

/// Tentpole acceptance: a fully-sampled served run yields span trees that
/// are complete (single `accept` root, no orphan parents, worker stages
/// present) and `purposectl trace --slowest` reconstructs them.
#[test]
fn traced_p12_run_yields_complete_span_trees() {
    let (_, stream) = p12_stream(2_000);
    let split = split_by_tenant(&stream);
    let dir = scratch_dir("trace");
    let spans_path = dir.join("spans.jsonl");
    let server = ServerProc::spawn(
        &TENANTS,
        &[
            "--trace-sample",
            "1.0",
            "--trace-out",
            spans_path.to_str().unwrap(),
            "--watermark",
            "100000",
        ],
    );
    for (tenant, lines) in &split {
        let body = format!("{}\n", lines.join("\n"));
        let resp = server.post(&format!("/v1/{tenant}/entries"), &body);
        assert_eq!(resp.status, 202, "{}", resp.body);
    }
    server.quiesce(&TENANTS);
    // `GET /debug/spans` serves recent trees while the process is live.
    let resp = server.get("/debug/spans");
    assert_eq!(resp.status, 200);
    let doc = obs::parse_json(&resp.body).expect("debug spans JSON");
    assert_eq!(
        doc.get("enabled")
            .and_then(|v| v.as_str().map(str::to_string)),
        None,
        "enabled must be a bool, not a string"
    );
    server.terminate();

    // Every persisted line validates against the span schema, and every
    // tree is closed: one accept root, all parents resolvable.
    let schema = load_schema("span.schema.json");
    let text = std::fs::read_to_string(&spans_path).expect("span file written");
    let mut trees = 0usize;
    let mut ingest_trees = 0usize;
    for line in text.lines() {
        let doc = obs::parse_json(line).expect("span line parses");
        let errors = obs::validate(&doc, &schema);
        assert!(errors.is_empty(), "span schema violations: {errors:?}");
        trees += 1;
        let spans = doc.get("spans").and_then(|v| v.as_array()).unwrap();
        let ids: Vec<String> = spans
            .iter()
            .map(|s| s.get("span").and_then(|v| v.as_str()).unwrap().to_string())
            .collect();
        let mut roots = 0;
        let mut stages = Vec::new();
        for span in spans {
            let stage = span.get("stage").and_then(|v| v.as_str()).unwrap();
            stages.push(stage.to_string());
            match span.get("parent") {
                Some(obs::JsonValue::Null) => {
                    roots += 1;
                    assert_eq!(stage, "accept", "root span must be the accept stage");
                }
                Some(obs::JsonValue::String(p)) => {
                    assert!(
                        ids.contains(p),
                        "orphan span: parent {p} not in tree\n{line}"
                    );
                }
                other => panic!("bad parent field: {other:?}"),
            }
        }
        assert_eq!(roots, 1, "tree must have exactly one root\n{line}");
        if stages.iter().any(|s| s == "replay") {
            ingest_trees += 1;
            for required in ["admission", "queue_wait", "verdict"] {
                assert!(
                    stages.iter().any(|s| s == required),
                    "ingest trace missing {required} stage\n{line}"
                );
            }
        }
    }
    assert!(trees > 0, "no traces persisted");
    assert_eq!(
        ingest_trees,
        TENANTS.len(),
        "each tenant submission must yield one full accept->verdict tree"
    );

    // The operator view reconstructs the same trees with no orphans.
    let output = Command::new(purposectl_bin())
        .args([
            "trace",
            "--file",
            spans_path.to_str().unwrap(),
            "--slowest",
            "5",
        ])
        .output()
        .expect("run purposectl trace");
    assert!(output.status.success(), "purposectl trace failed");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("trace "), "no trace rendered:\n{stdout}");
    assert!(stdout.contains("accept"), "accept stage missing:\n{stdout}");
    assert!(
        !stdout.contains("ORPHAN"),
        "trace reconstruction found orphan spans:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGUSR1 must produce a schema-valid flight dump whose final
/// `OffsetCommit` per tenant equals the offsets the API reports.
#[test]
fn sigusr1_dumps_schema_valid_flight_with_final_offsets() {
    let (_, stream) = p12_stream(2_000);
    let split = split_by_tenant(&stream);
    let dir = scratch_dir("flight");
    let server = ServerProc::spawn(
        &TENANTS,
        &[
            "--flight-dir",
            dir.to_str().unwrap(),
            "--watermark",
            "100000",
        ],
    );
    let mut kept: BTreeMap<&str, u64> = BTreeMap::new();
    for (tenant, lines) in &split {
        let body = format!("{}\n", lines.join("\n"));
        let resp = server.post(&format!("/v1/{tenant}/entries"), &body);
        assert_eq!(resp.status, 202, "{}", resp.body);
        let doc = obs::parse_json(&resp.body).expect("accept JSON");
        kept.insert(tenant, number(&doc, "accepted") as u64);
    }
    server.quiesce(&TENANTS);
    let mut audited: BTreeMap<&str, u64> = BTreeMap::new();
    for tenant in TENANTS {
        let resp = server.get(&format!("/v1/{tenant}/verdicts"));
        let doc = obs::parse_json(&resp.body).expect("verdicts JSON");
        audited.insert(tenant, number(&doc, "audited") as u64);
        assert_eq!(audited[tenant], kept[tenant], "quiesced tenant not drained");
    }

    // The live ring is also visible over HTTP before any dump happens.
    let resp = server.get("/debug/flight");
    assert_eq!(resp.status, 200, "{}", resp.body);

    let pid = server.child.id().to_string();
    let status = Command::new("kill")
        .args(["-USR1", &pid])
        .status()
        .expect("send SIGUSR1");
    assert!(status.success(), "kill -USR1 failed");

    // The serve loop honors the signal within one 50ms tick and keeps the
    // SIGUSR1 dump on disk for at least one periodic interval.
    let flight_path = dir.join("flight.jsonl");
    let deadline = Instant::now() + Duration::from_secs(10);
    let text = loop {
        assert!(
            Instant::now() < deadline,
            "SIGUSR1 flight dump never landed"
        );
        if let Ok(text) = std::fs::read_to_string(&flight_path) {
            if text.contains("SIGUSR1") {
                break text;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    };

    let schema = load_schema("flight.schema.json");
    let mut last_offset: BTreeMap<String, u64> = BTreeMap::new();
    let mut last_kind = String::new();
    for line in text.lines() {
        let doc = obs::parse_json(line).expect("flight line parses");
        let errors = obs::validate(&doc, &schema);
        assert!(
            errors.is_empty(),
            "flight schema violations: {errors:?}\n{line}"
        );
        let kind = doc
            .get("kind")
            .and_then(|v| v.as_str())
            .unwrap()
            .to_string();
        if kind == "OffsetCommit" {
            let tenant = doc.get("tenant").and_then(|v| v.as_str()).unwrap();
            last_offset.insert(tenant.to_string(), number(&doc, "offset") as u64);
        }
        last_kind = kind;
    }
    assert_eq!(
        last_kind, "FlightDump",
        "dump must end with its marker event"
    );
    for tenant in TENANTS {
        assert_eq!(
            last_offset.get(tenant).copied(),
            Some(audited[tenant]),
            "flight recorder's last committed offset diverged from the API"
        );
    }
    server.terminate();
    let _ = std::fs::remove_dir_all(&dir);
}
