//! Snapshot persistence: round-trip, corruption battery, golden fixture.
//!
//! The automaton snapshot subsystem (`cows::automaton::snapshot`) must be
//! *strictly fail-open*: a snapshot that is stale, truncated, bit-flipped,
//! version-bumped or keyed to another process falls back to cold
//! compilation with a typed reason — never a panic, never a partial load,
//! never a different verdict. These tests drive the whole stack (bpmn
//! keying + cows codec + core replay) on the paper's Fig. 1 healthcare
//! process.
//!
//! The golden fixture (`tests/fixtures/healthcare.pcas`) is a committed
//! snapshot from a previous run of this repository. Loading it exercises
//! the cross-run path for real: symbol interning order in this test
//! process differs from the run that wrote the fixture, so the loader's
//! re-normalization and edge re-sorting are what make the warm automaton
//! usable. If the format changes, this test fails until the version is
//! bumped deliberately and the fixture regenerated (see
//! `regenerate_golden_fixture` below).

use audit::samples::figure4_trail;
use audit::LogEntry;
use bpmn::encode::{encode, Encoded};
use bpmn::models::{clinical_trial, healthcare_treatment};
use cows::SnapshotError;
use policy::samples::hospital_roles;
use purpose_control::replay::{check_case, CaseCheck, CheckOptions};
use purpose_control::startup::StartupStats;

fn fresh_healthcare() -> Encoded {
    encode(&healthcare_treatment())
}

fn ht1_entries(trail: &audit::AuditTrail) -> Vec<&LogEntry> {
    trail.project_case(cows::sym("HT-1"))
}

/// Replay Jane's HT-1 treatment case (Fig. 4) against `enc`.
fn replay_ht1(enc: &Encoded) -> CaseCheck {
    let trail = figure4_trail();
    let entries = ht1_entries(&trail);
    check_case(
        enc,
        &hospital_roles(),
        &entries,
        &CheckOptions {
            record_trace: true,
            ..CheckOptions::default()
        },
    )
    .expect("HT-1 replays without exploration errors")
}

/// A snapshot of an automaton warmed by exactly one HT-1 replay.
fn warmed_snapshot() -> Vec<u8> {
    let enc = fresh_healthcare();
    assert!(replay_ht1(&enc).verdict.is_compliant());
    enc.snapshot_bytes()
}

/// Byte-exact comparison of everything a replay can observe.
fn assert_same_check(a: &CaseCheck, b: &CaseCheck) {
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.peak_configurations, b.peak_configurations);
    assert_eq!(a.explored_successors, b.explored_successors);
    assert_eq!(format!("{:?}", a.steps), format!("{:?}", b.steps));
}

#[test]
fn warm_loaded_snapshot_replays_identically_with_zero_expansions() {
    let reference = replay_ht1(&fresh_healthcare());
    let bytes = warmed_snapshot();

    let warm = fresh_healthcare();
    let report = warm.load_snapshot_bytes(&bytes).expect("snapshot loads");
    assert!(report.is_warm());
    assert!(report.edges_loaded > 0);

    let result = replay_ht1(&warm);
    assert_same_check(&reference, &result);

    // The acceptance criterion: a warm `purposectl check` of the
    // healthcare process performs zero weak_next term expansions for
    // snapshot states — every edge lookup hits the loaded tables.
    let stats = warm.automaton.stats();
    assert_eq!(stats.edge_misses, 0, "warm replay must never run weak_next");
    assert!(stats.edge_hits > 0);
    assert_eq!(stats.loaded_states as usize, report.snapshot_states);
    assert_eq!(stats.loaded_edges as usize, report.edges_loaded);
}

/// Every corruption falls back cold with the right typed reason, leaves
/// the automaton untouched, and the subsequent cold replay still produces
/// the reference verdict. No panic, no partial load.
#[test]
fn corruption_battery_is_fail_open() {
    let reference = replay_ht1(&fresh_healthcare());
    let good = warmed_snapshot();

    let mut cases: Vec<(String, Vec<u8>, fn(&SnapshotError) -> bool)> = Vec::new();

    // Truncations: empty, mid-header, exactly the header, mid-payload,
    // one byte short.
    for cut in [0usize, 3, 9, 32, good.len() / 2, good.len() - 1] {
        cases.push((
            format!("truncated to {cut} bytes"),
            good[..cut].to_vec(),
            |e| {
                matches!(
                    e,
                    SnapshotError::Truncated | SnapshotError::ChecksumMismatch { .. }
                )
            },
        ));
    }

    // Bit flips: magic, payload (several positions), stored checksum.
    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0x20;
    cases.push(("magic flipped".into(), bad_magic, |e| {
        matches!(e, SnapshotError::BadMagic)
    }));
    for pos in [32usize, good.len() / 3, good.len() - 2] {
        let mut flipped = good.clone();
        flipped[pos] ^= 0x01;
        cases.push((format!("payload bit flipped at {pos}"), flipped, |e| {
            matches!(
                e,
                SnapshotError::ChecksumMismatch { .. } | SnapshotError::Malformed(_)
            )
        }));
    }
    let mut bad_checksum = good.clone();
    bad_checksum[24] ^= 0xff;
    cases.push(("stored checksum flipped".into(), bad_checksum, |e| {
        matches!(e, SnapshotError::ChecksumMismatch { .. })
    }));

    // A future format version must be rejected up front.
    let mut bumped = good.clone();
    bumped[4] = bumped[4].wrapping_add(1);
    cases.push(("version bumped".into(), bumped, |e| {
        matches!(e, SnapshotError::VersionMismatch { .. })
    }));

    // A valid snapshot of a *different* process: stale-key self-invalidation.
    let other = encode(&clinical_trial());
    cases.push((
        "keyed to another process".into(),
        other.snapshot_bytes(),
        |e| matches!(e, SnapshotError::KeyMismatch { .. }),
    ));

    for (what, bytes, is_expected) in cases {
        let enc = fresh_healthcare();
        let err = enc
            .load_snapshot_bytes(&bytes)
            .expect_err(&format!("{what}: load must fail"));
        assert!(is_expected(&err), "{what}: unexpected error {err:?}");
        // No partial load: the automaton is exactly as cold as before.
        assert_eq!(enc.automaton.len(), 0, "{what}: automaton must stay empty");
        let stats = enc.automaton.stats();
        assert_eq!(stats.loaded_states, 0, "{what}");
        assert_eq!(stats.loaded_edges, 0, "{what}");
        // The fallback reason is printable and the cold replay is unharmed.
        let startup = StartupStats::from_load(Err(err));
        assert!(startup.to_string().starts_with("cold start: "), "{what}");
        assert_same_check(&reference, &replay_ht1(&enc));
    }
}

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/healthcare.pcas"
);

/// The committed fixture still loads: accidental format or keying breaks
/// surface here and force a deliberate `FORMAT_VERSION` bump plus fixture
/// regeneration.
#[test]
fn golden_fixture_loads_and_warm_starts() {
    let enc = fresh_healthcare();
    let report = enc.load_snapshot(std::path::Path::new(GOLDEN)).expect(
        "committed fixture must load — format/keying changed? bump FORMAT_VERSION and regenerate",
    );
    assert!(report.is_warm());
    assert!(report.snapshot_states > 0);

    let result = replay_ht1(&enc);
    assert!(result.verdict.is_compliant());
    assert_eq!(
        enc.automaton.stats().edge_misses,
        0,
        "fixture must cover the whole HT-1 walk"
    );
    assert_same_check(&replay_ht1(&fresh_healthcare()), &result);
}

/// Regenerates the golden fixture. Run manually after a deliberate format
/// change: `cargo test --test snapshots regenerate_golden_fixture -- --ignored`.
#[test]
#[ignore = "writes tests/fixtures/healthcare.pcas; run after deliberate format changes"]
fn regenerate_golden_fixture() {
    let enc = fresh_healthcare();
    assert!(replay_ht1(&enc).verdict.is_compliant());
    std::fs::create_dir_all(std::path::Path::new(GOLDEN).parent().unwrap()).unwrap();
    enc.save_snapshot(std::path::Path::new(GOLDEN)).unwrap();
}
