//! Robustness of every parser in the workspace: arbitrary input must yield
//! `Ok` or a structured error — never a panic, hang or bogus success on
//! garbage. Parsers are the attack surface of a deployed auditor (they eat
//! files from log shippers and modelers).

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The trail codec never panics.
    #[test]
    fn trail_parser_total(input in ".{0,200}") {
        let _ = audit::codec::parse_trail(&input);
    }

    /// The policy parser never panics.
    #[test]
    fn policy_parser_total(input in ".{0,200}") {
        let _ = policy::parse::parse_policy(&input);
    }

    /// The process parser never panics.
    #[test]
    fn process_parser_total(input in ".{0,300}") {
        let _ = bpmn::parse::parse_process(&input);
    }

    /// The COWS term parser never panics.
    #[test]
    fn cows_parser_total(input in ".{0,200}") {
        let _ = cows::parse::parse_service(&input);
    }

    /// The timestamp parser never panics and accepts only exact layouts.
    #[test]
    fn timestamp_parser_total(input in ".{0,20}") {
        if let Ok(t) = input.parse::<audit::Timestamp>() {
            // Anything accepted must round-trip.
            prop_assert_eq!(t.to_string().parse::<audit::Timestamp>().unwrap(), t);
        }
    }

    /// The object parser never panics; accepted objects round-trip.
    #[test]
    fn object_parser_total(input in "[\\[\\]A-Za-z0-9/*.]{0,40}") {
        if let Ok(o) = input.parse::<policy::ObjectId>() {
            prop_assert_eq!(o.to_string().parse::<policy::ObjectId>().unwrap(), o);
        }
        let _ = input.parse::<policy::ObjectPattern>();
    }

    /// Near-miss trail lines (valid shape, fuzzed fields) parse or error
    /// cleanly and never mis-assign columns.
    #[test]
    fn trail_near_misses(
        user in "[a-z]{1,8}",
        role in "[A-Za-z]{1,8}",
        action in "[a-z]{1,8}",
        object in "[\\[\\]A-Za-z/]{1,16}",
        task in "[A-Z0-9]{1,4}",
        time in "[0-9]{8,14}",
    ) {
        let line = format!("{user} {role} {action} {object} {task} C-1 {time} success\n");
        if let Ok(trail) = audit::codec::parse_trail(&line) {
            let e = &trail.entries()[0];
            prop_assert_eq!(e.user.to_string(), user);
            prop_assert_eq!(e.role.to_string(), role);
            prop_assert_eq!(e.task.to_string(), task);
        }
    }
}
